// Command netplan plays out the paper's motivating scenario: a network
// operator leases communication channels (edges) and wants the cheapest
// subset that still supports *optimal* routing from a head office under up
// to two simultaneous channel failures.
//
// It compares four purchase plans on the same backbone-like network:
//
//	tree       — a plain BFS tree: cheapest, breaks under any failure
//	single     — the ESA'13 single-failure structure (O(n^{3/2}))
//	dual       — the PODC'15 dual-failure structure (O(n^{5/3}))
//	approx-f2  — Section 5's O(log n)-approximate minimum dual structure
package main

import (
	"fmt"
	"os"

	ftbfs "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netplan:", err)
		os.Exit(1)
	}
}

func run() error {
	// A layered backbone: 6 sites per tier, 7 tiers, redundant links.
	g := ftbfs.Layered(6, 7, 0.4, 7)
	const hq = 0
	fmt.Printf("network: %d sites, %d available channels\n\n", g.N(), g.M())

	type plan struct {
		name   string
		faults int
		build  func() (*ftbfs.Structure, error)
	}
	plans := []plan{
		{"tree (f=0)", 0, func() (*ftbfs.Structure, error) {
			return ftbfs.BuildExhaustiveFTBFS(g, hq, 0, nil)
		}},
		{"single (f=1)", 1, func() (*ftbfs.Structure, error) {
			return ftbfs.BuildSingleFTBFS(g, hq, nil)
		}},
		{"dual (f=2)", 2, func() (*ftbfs.Structure, error) {
			return ftbfs.BuildDualFTBFS(g, hq, nil)
		}},
		{"approx (f=2)", 2, func() (*ftbfs.Structure, error) {
			return ftbfs.BuildApproxFTMBFS(g, []int{hq}, 2, nil)
		}},
	}

	fmt.Printf("%-14s %9s %10s %12s %s\n", "plan", "channels", "% of all", "resilience", "verified")
	for _, p := range plans {
		st, err := p.build()
		if err != nil {
			return fmt.Errorf("%s: %w", p.name, err)
		}
		rep := ftbfs.Verify(g, st, []int{hq}, p.faults)
		status := "ok"
		if !rep.OK {
			status = fmt.Sprintf("FAILED (%d violations)", len(rep.Violations))
		}
		fmt.Printf("%-14s %9d %9.1f%% %12s %s\n",
			p.name, st.NumEdges(), 100*float64(st.NumEdges())/float64(g.M()),
			fmt.Sprintf("≤%d faults", p.faults), status)

		// The tree plan really does break under a single failure:
		if p.faults == 0 {
			bad := ftbfs.VerifyWithOptions(g, st, []int{hq}, 1, &ftbfs.VerifyOptions{MaxViolations: 1})
			if !bad.OK {
				v := bad.Violations[0]
				fmt.Printf("%-14s %9s %10s %12s channel %v down → site %d detour suboptimal\n",
					"", "", "", "", g.EdgeAt(v.Faults[0]), v.V)
			}
		}
	}

	fmt.Println("\nThe dual plan guarantees every site still receives traffic over a")
	fmt.Println("shortest possible route after any two simultaneous channel failures,")
	fmt.Println("at a fraction of the full network's channel cost.")
	return nil
}
