// Command quickstart is the smallest end-to-end tour of the library: build
// a dual-failure FT-BFS structure on a random graph, verify it exhaustively
// against the definition, and watch it survive a concrete two-edge failure.
package main

import (
	"fmt"
	"os"

	ftbfs "repro"
	"repro/internal/bfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A random connected graph: 60 vertices, average degree ~6.
	g := ftbfs.SparseGNP(60, 6, 2015)
	const source = 0
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	// Theorem 1.1: the dual-failure FT-BFS structure.
	st, err := ftbfs.BuildDualFTBFS(g, source, nil)
	if err != nil {
		return err
	}
	fmt.Printf("dual FT-BFS: %d edges (%.1f%% of G, tree is %d)\n",
		st.NumEdges(), 100*float64(st.NumEdges())/float64(g.M()), g.N()-1)
	fmt.Printf("construction: %d Dijkstra runs, max new edges per vertex %d\n",
		st.Stats.Dijkstras, st.Stats.MaxNewEdges)

	// The definition, checked exhaustively over all C(m,2)+m+1 fault sets.
	rep := ftbfs.Verify(g, st, []int{source}, 2)
	if !rep.OK {
		return fmt.Errorf("verification failed: %v", rep.Violations[0])
	}
	fmt.Printf("verified: %d fault sets checked, %d pruned, 0 violations\n",
		rep.FaultSetsChecked, rep.FaultSetsPruned)

	// Watch it work: fail two structure edges and compare distances.
	ids := st.Edges.IDs()
	f1, f2 := ids[len(ids)/3], ids[2*len(ids)/3]
	fmt.Printf("\nfailing edges %v and %v:\n", g.EdgeAt(f1), g.EdgeAt(f2))
	inG := bfs.NewRunner(g)
	inG.Run(source, []int{f1, f2}, nil)
	inH := bfs.NewRunner(g)
	inH.Run(source, append(st.DisabledEdges(), f1, f2), nil)
	for _, v := range []int{10, 25, 40, 59} {
		fmt.Printf("  dist(s,%2d): G\\F = %2d   H\\F = %2d\n", v, inG.Dist(v), inH.Dist(v))
	}
	return nil
}
