// Command multisource demonstrates FT-MBFS structures: several sources
// (e.g. replicated data centers) each need exact BFS distances to every
// node under failures. It contrasts the generic per-source union with the
// Section-5 set-cover approximation, which optimizes all sources jointly,
// and demonstrates the Theorem 4.1 lower-bound instance for several σ.
package main

import (
	"fmt"
	"os"

	ftbfs "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multisource:", err)
		os.Exit(1)
	}
}

func run() error {
	g := ftbfs.SparseGNP(40, 5, 99)
	sources := []int{0, 13, 27}
	fmt.Printf("graph: n=%d m=%d, sources %v, f=1\n\n", g.N(), g.M(), sources)

	union, err := ftbfs.BuildMultiSourceDualFTBFS(g, sources, nil)
	if err != nil {
		return err
	}
	// The per-source union tolerates f=2; compare it at f=1 against the
	// joint approximation to keep the comparison apples-to-apples.
	ap, err := ftbfs.BuildApproxFTMBFS(g, sources, 1, nil)
	if err != nil {
		return err
	}
	single, err := ftbfs.BuildApproxFTMBFS(g, sources[:1], 1, nil)
	if err != nil {
		return err
	}

	for _, row := range []struct {
		name string
		st   *ftbfs.Structure
		f    int
	}{
		{"approx, 1 source", single, 1},
		{"approx, 3 sources jointly", ap, 1},
		{"union of per-source dual", union, 2},
	} {
		rep := ftbfs.Verify(g, row.st, row.st.Sources, row.f)
		ok := "ok"
		if !rep.OK {
			ok = "FAILED"
		}
		fmt.Printf("%-28s %4d edges  f=%d  verify: %s\n", row.name, row.st.NumEdges(), row.f, ok)
	}

	fmt.Println("\nTheorem 4.1 instances (every bipartite edge provably necessary):")
	for _, sigma := range []int{1, 2, 3} {
		mi, err := ftbfs.LowerBoundMulti(1, sigma, 360)
		if err != nil {
			return err
		}
		fmt.Printf("  σ=%d: n=%d, forced bipartite edges=%d\n",
			sigma, mi.G.N(), mi.BipartiteCount)
	}
	return nil
}
