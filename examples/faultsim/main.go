// Command faultsim runs a Monte-Carlo fault simulation: random dual-edge
// failure events hit a network while traffic is routed inside the
// dual-failure FT-BFS structure. It measures the routing stretch of the
// structure (always 1.0 — that is the theorem) against a plain BFS tree
// and the single-failure structure, which both go suboptimal or lose
// connectivity.
package main

import (
	"fmt"
	"math/rand"
	"os"

	ftbfs "repro"
	"repro/internal/bfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

type tally struct {
	name          string
	disabled      []int
	worstStretch  float64
	sumStretch    float64
	stretchCount  int
	disconnected  int
	totalMeasured int
}

func run() error {
	g := ftbfs.SparseGNP(70, 5, 11)
	const source, trials = 0, 400
	fmt.Printf("graph: n=%d m=%d; %d random dual-failure events\n\n", g.N(), g.M(), trials)

	tree, err := ftbfs.BuildExhaustiveFTBFS(g, source, 0, nil)
	if err != nil {
		return err
	}
	single, err := ftbfs.BuildSingleFTBFS(g, source, nil)
	if err != nil {
		return err
	}
	dual, err := ftbfs.BuildDualFTBFS(g, source, nil)
	if err != nil {
		return err
	}

	tallies := []*tally{
		{name: fmt.Sprintf("BFS tree (%d edges)", tree.NumEdges()), disabled: tree.DisabledEdges()},
		{name: fmt.Sprintf("single-failure (%d edges)", single.NumEdges()), disabled: single.DisabledEdges()},
		{name: fmt.Sprintf("dual-failure (%d edges)", dual.NumEdges()), disabled: dual.DisabledEdges()},
	}

	rng := rand.New(rand.NewSource(5))
	inG := bfs.NewRunner(g)
	inH := bfs.NewRunner(g)
	for trial := 0; trial < trials; trial++ {
		f1 := rng.Intn(g.M())
		f2 := rng.Intn(g.M())
		if f1 == f2 {
			continue
		}
		inG.Run(source, []int{f1, f2}, nil)
		for _, ta := range tallies {
			inH.Run(source, append([]int{f1, f2}, ta.disabled...), nil)
			for v := 0; v < g.N(); v++ {
				want := inG.Dist(v)
				if want == bfs.Unreachable {
					continue // v cut off in G as well: nothing to route
				}
				got := inH.Dist(v)
				ta.totalMeasured++
				if got == bfs.Unreachable {
					ta.disconnected++
					continue
				}
				s := float64(got) / float64(want)
				if want == 0 {
					s = 1
				}
				ta.sumStretch += s
				ta.stretchCount++
				if s > ta.worstStretch {
					ta.worstStretch = s
				}
			}
		}
	}

	fmt.Printf("%-28s %12s %12s %14s\n", "routing substrate", "avg stretch", "worst", "disconnected")
	for _, ta := range tallies {
		avg := ta.sumStretch / float64(ta.stretchCount)
		fmt.Printf("%-28s %12.4f %12.2f %9d/%d\n",
			ta.name, avg, ta.worstStretch, ta.disconnected, ta.totalMeasured)
	}
	fmt.Println("\nThe dual-failure structure is the only substrate with stretch exactly 1")
	fmt.Println("and zero disconnections — that is Theorem 1.1 operating as designed.")
	return nil
}
