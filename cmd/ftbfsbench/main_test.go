package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchSubset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E4", "-sizes", "30,40"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E4") || strings.Contains(s, "== E1") {
		t.Fatalf("subset selection wrong:\n%s", s)
	}
}

func TestBenchBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sizes", "abc"}, &out); err == nil {
		t.Fatal("bad sizes accepted")
	}
	if err := run([]string{"-sizes", "2"}, &out); err == nil {
		t.Fatal("tiny size accepted")
	}
}

func TestBenchTwoExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "e8,E10", "-sizes", "30"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E8") || !strings.Contains(s, "== E10") {
		t.Fatalf("expected E8 and E10:\n%s", s)
	}
}
