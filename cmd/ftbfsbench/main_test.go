package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/snap"
)

func TestBenchSubset(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-only", "E4", "-sizes", "30,40"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E4") || strings.Contains(s, "== E1") {
		t.Fatalf("subset selection wrong:\n%s", s)
	}
}

func TestBenchBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-sizes", "abc"}, &out); err == nil {
		t.Fatal("bad sizes accepted")
	}
	if err := run(context.Background(), []string{"-sizes", "2"}, &out); err == nil {
		t.Fatal("tiny size accepted")
	}
}

func TestBenchTwoExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-only", "e8,E10", "-sizes", "30"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E8") || !strings.Contains(s, "== E10") {
		t.Fatalf("expected E8 and E10:\n%s", s)
	}
}

func TestWarmStartBench(t *testing.T) {
	dir := t.TempDir()
	st, err := core.BuildDual(gen.GNP(60, 0.12, 7), 0, &core.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "s.ftbfs")
	sn := &snap.Snapshot{Structure: st, Meta: snap.Meta{Mode: "dual", Seed: 4}}
	if err := snap.WriteFile(path, sn); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-snapshot", path}, &out); err != nil {
		t.Fatalf("err=%v out=%s", err, out.String())
	}
	for _, want := range []string{"warm start total", "rebuild (dual)", "identical to the decoded one"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	// A snapshot without a recorded mode skips the rebuild comparison.
	path2 := filepath.Join(dir, "nomode.ftbfs")
	if err := snap.WriteFile(path2, &snap.Snapshot{Structure: st}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), []string{"-snapshot", path2}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rebuild: skipped") {
		t.Fatalf("output:\n%s", out.String())
	}
}
