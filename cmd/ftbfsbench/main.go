// Command ftbfsbench runs the paper-reproduction experiment suite (E1–E13
// in DESIGN.md) and prints the resulting tables. This is the full-scale
// companion to the quick `go test -bench .` harness.
//
// Usage:
//
//	ftbfsbench                 # quick profile, all experiments
//	ftbfsbench -full           # full sweep (minutes)
//	ftbfsbench -only E1,E2     # subset
//	ftbfsbench -sizes 60,90    # override the n sweep
//	ftbfsbench -snapshot s.ftbfs  # warm-start-vs-rebuild timing on a snapshot
//
// -snapshot skips the experiment suite and instead measures the
// persistence layer on a real artifact: decode time, oracle-set
// rehydration time, query throughput over the decoded structure, and —
// when the snapshot records its builder mode — a full rebuild of the same
// structure for comparison, with an equality check proving the decoded
// and rebuilt artifacts are identical.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/oracle"
	"repro/internal/snap"
)

func main() {
	// SIGINT/SIGTERM cancel the run's context: the experiments' builders
	// poll it cooperatively, so one signal stops a sweep mid-measurement
	// (a second signal kills the process the usual way).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftbfsbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ftbfsbench", flag.ContinueOnError)
	var (
		full     = fs.Bool("full", false, "full-scale sweep")
		only     = fs.String("only", "", "comma-separated experiment IDs (default: all)")
		sizes    = fs.String("sizes", "", "comma-separated n sweep override")
		seeds    = fs.Int("seeds", 0, "replicate seeds per point")
		snapPath = fs.String("snapshot", "", "bench warm-start vs rebuild on a snapshot file")
		timeout  = fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")

		zipf        = fs.Bool("zipf", false, "run the Zipf-skewed serving workload: hit rate and q/s of the full-table vs delta-compressed memo across -cache-bytes budgets")
		zipfN       = fs.Int("zipf-n", 2000, "zipf workload: graph vertices")
		zipfDeg     = fs.Int("zipf-deg", 6, "zipf workload: average degree")
		zipfSources = fs.Int("zipf-sources", 4, "zipf workload: structure sources")
		zipfSkew    = fs.Float64("zipf-skew", 1.2, "zipf workload: popularity exponent (>1)")
		zipfEvents  = fs.Int("zipf-events", 4096, "zipf workload: distinct single-edge failure events")
		zipfQueries = fs.Int("zipf-queries", 200000, "zipf workload: point lookups per memo configuration")
		zipfSeed    = fs.Int64("zipf-seed", 7, "zipf workload: RNG seed (graph, ranks and stream)")
		cacheBytes  = fs.String("cache-bytes", "262144,1048576,4194304", "zipf workload: comma-separated memo byte budgets")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *snapPath != "" {
		return warmStartBench(ctx, *snapPath, stdout)
	}
	if *zipf {
		if *zipfSkew <= 1 {
			return fmt.Errorf("-zipf-skew must be > 1 (got %g)", *zipfSkew)
		}
		cfg := zipfConfig{
			n: *zipfN, deg: *zipfDeg, sources: *zipfSources, skew: *zipfSkew,
			events: *zipfEvents, queries: *zipfQueries, seed: *zipfSeed,
		}
		if cfg.n < 8 || cfg.sources < 1 || cfg.events < 2 || cfg.queries < 1 {
			return fmt.Errorf("bad -zipf parameters")
		}
		for _, b := range strings.Split(*cacheBytes, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(b), 10, 64)
			if err != nil || v < 1 {
				return fmt.Errorf("bad -cache-bytes budget %q", b)
			}
			cfg.budgets = append(cfg.budgets, v)
		}
		return zipfBench(ctx, cfg, stdout)
	}
	cfg := exp.Config{Full: *full, Seeds: *seeds, Ctx: ctx}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 8 {
				return fmt.Errorf("bad size %q", s)
			}
			cfg.Sizes = append(cfg.Sizes, v)
		}
	}
	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	all := []struct {
		id string
		fn func(exp.Config) (*exp.Table, error)
	}{
		{"E1", exp.E1DualSize},
		{"E2", exp.E2LowerBound},
		{"E3", exp.E3Approx},
		{"E4", exp.E4FTDiameter},
		{"E5", exp.E5PerVertex},
		{"E6", exp.E6SingleVsDual},
		{"E7", exp.E7Classes},
		{"E8", exp.E8Detours},
		{"E9", exp.E9Verify},
		{"E10", exp.E10Kernel},
		{"E11", exp.E11Ablation},
		{"E12", exp.E12Beyond},
		{"E13", exp.E13Selection},
	}
	for _, e := range all {
		if len(wanted) > 0 && !wanted[e.id] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("stopped before %s: %w", e.id, err)
		}
		start := time.Now()
		tbl, err := e.fn(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprint(stdout, tbl.String())
		fmt.Fprintf(stdout, "   (%.1fs)\n\n", time.Since(start).Seconds())
	}
	return nil
}

// warmStartBench measures what the snapshot layer buys: load + rehydrate
// time versus rebuilding the same structure from scratch. The rebuild —
// the expensive half — honors ctx (SIGINT / -timeout).
func warmStartBench(ctx context.Context, path string, stdout io.Writer) error {
	start := time.Now()
	sn, err := snap.ReadFile(path)
	if err != nil {
		return err
	}
	decode := time.Since(start)
	st := sn.Structure

	start = time.Now()
	set, err := oracle.NewSet(st)
	if err != nil {
		return err
	}
	rehydrate := time.Since(start)

	// Exercise the rehydrated oracle: distinct single-fault events from
	// every structure source (uncached BFS each, the serving cold path).
	// A zero fault budget or a vertex-fault structure cannot take edge
	// faults, so those probe only the fault-free table.
	o := set.Handle()
	queries := 0
	start = time.Now()
	if st.Faults > 0 && !st.VertexFaults {
		for _, s := range st.Sources {
			for id := 0; id < st.G.M() && queries < 256; id += 3 {
				if _, err := o.Dists(s, []int{id}); err != nil {
					return err
				}
				queries++
			}
		}
	} else {
		for _, s := range st.Sources {
			if _, err := o.Dists(s, nil); err != nil {
				return err
			}
			queries++
		}
	}
	queryTime := time.Since(start)

	fmt.Fprintf(stdout, "snapshot %s: n=%d m=%d, %d structure edges, f=%d, sources %v\n",
		path, st.G.N(), st.G.M(), st.NumEdges(), st.Faults, st.Sources)
	fmt.Fprintf(stdout, "  decode            %12v\n", decode)
	fmt.Fprintf(stdout, "  oracle rehydrate  %12v\n", rehydrate)
	warm := decode + rehydrate
	fmt.Fprintf(stdout, "  warm start total  %12v\n", warm)
	if queries > 0 {
		fmt.Fprintf(stdout, "  %d uncached dist-table queries: %v (%.0f/s)\n",
			queries, queryTime, float64(queries)/queryTime.Seconds())
	}

	build, berr := core.BuilderForMode(sn.Meta.Mode, st.Sources)
	if berr != nil {
		fmt.Fprintf(stdout, "  rebuild: skipped (%v)\n", berr)
		return nil
	}
	start = time.Now()
	var prog core.Progress
	st2, err := build(st.G, &core.Options{Seed: sn.Meta.Seed, Ctx: ctx, Progress: &prog})
	if err != nil {
		return err
	}
	rebuild := time.Since(start)
	same := st2.NumEdges() == st.NumEdges()
	if same {
		for _, id := range st.Edges.IDs() {
			if !st2.Edges.Has(id) {
				same = false
				break
			}
		}
	}
	fmt.Fprintf(stdout, "  rebuild (%s)      %12v   %.1f× slower than warm start\n",
		sn.Meta.Mode, rebuild, float64(rebuild)/float64(warm))
	// Per-phase breakdown of the rebuild (goroutine-time: phases sum to
	// more than wall time for parallel builds).
	if ps := prog.Snapshot(); ps.BaseNS+ps.EventsNS+ps.UnionNS > 0 {
		fmt.Fprintf(stdout, "    base trees      %12v\n", time.Duration(ps.BaseNS))
		fmt.Fprintf(stdout, "    fault events    %12v\n", time.Duration(ps.EventsNS))
		fmt.Fprintf(stdout, "    union/fold      %12v\n", time.Duration(ps.UnionNS))
	}
	if !same {
		return fmt.Errorf("rebuilt structure differs from snapshot (seed %d, mode %s)", sn.Meta.Seed, sn.Meta.Mode)
	}
	fmt.Fprintf(stdout, "  rebuilt structure is identical to the decoded one\n")
	return nil
}
