// Command ftbfsbench runs the paper-reproduction experiment suite (E1–E13
// in DESIGN.md) and prints the resulting tables. This is the full-scale
// companion to the quick `go test -bench .` harness.
//
// Usage:
//
//	ftbfsbench                 # quick profile, all experiments
//	ftbfsbench -full           # full sweep (minutes)
//	ftbfsbench -only E1,E2     # subset
//	ftbfsbench -sizes 60,90    # override the n sweep
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftbfsbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ftbfsbench", flag.ContinueOnError)
	var (
		full  = fs.Bool("full", false, "full-scale sweep")
		only  = fs.String("only", "", "comma-separated experiment IDs (default: all)")
		sizes = fs.String("sizes", "", "comma-separated n sweep override")
		seeds = fs.Int("seeds", 0, "replicate seeds per point")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := exp.Config{Full: *full, Seeds: *seeds}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 8 {
				return fmt.Errorf("bad size %q", s)
			}
			cfg.Sizes = append(cfg.Sizes, v)
		}
	}
	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	all := []struct {
		id string
		fn func(exp.Config) (*exp.Table, error)
	}{
		{"E1", exp.E1DualSize},
		{"E2", exp.E2LowerBound},
		{"E3", exp.E3Approx},
		{"E4", exp.E4FTDiameter},
		{"E5", exp.E5PerVertex},
		{"E6", exp.E6SingleVsDual},
		{"E7", exp.E7Classes},
		{"E8", exp.E8Detours},
		{"E9", exp.E9Verify},
		{"E10", exp.E10Kernel},
		{"E11", exp.E11Ablation},
		{"E12", exp.E12Beyond},
		{"E13", exp.E13Selection},
	}
	for _, e := range all {
		if len(wanted) > 0 && !wanted[e.id] {
			continue
		}
		start := time.Now()
		tbl, err := e.fn(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprint(stdout, tbl.String())
		fmt.Fprintf(stdout, "   (%.1fs)\n\n", time.Since(start).Seconds())
	}
	return nil
}
