package main

// The -zipf mode measures what the byte-budgeted, delta-compressed memo
// buys on a realistic serving workload. Real query traffic is skewed —
// popular sources × recently-failed edges — so hit rate is governed by
// how many failure events the memo can HOLD, not by how fast one lookup
// is. The mode drives one deterministic Zipf-distributed query stream
// against two memo configurations per byte budget:
//
//   - full:  the pre-delta design, emulated by an entry cap of
//     budget/(4n) full tables (the old CacheBytes clamp);
//   - delta: the same budget handed to the byte-accounted cache, where
//     a typical event is stored as a small delta against its source's
//     pinned base.
//
// Both arms answer the identical stream, so entries held, hit rate and
// q/s are directly comparable. EXPERIMENTS.md records representative
// output.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/oracle"
)

type zipfConfig struct {
	n       int     // graph vertices
	deg     int     // average degree of the sparse G(n, deg/n) graph
	sources int     // structure sources (popularity-ranked)
	skew    float64 // Zipf exponent for both source and event popularity
	events  int     // distinct single-edge failure events in the universe
	queries int     // point lookups per arm
	budgets []int64 // memo byte budgets to sweep
	seed    int64
}

type zipfQuery struct {
	src    int // index into the source list
	ev     int // index into the event universe
	target int
}

func zipfBench(ctx context.Context, cfg zipfConfig, stdout io.Writer) error {
	g := gen.SparseGNP(cfg.n, float64(cfg.deg), cfg.seed)
	srcs := make([]int, cfg.sources)
	for i := range srcs {
		srcs[i] = i * g.N() / cfg.sources
	}
	start := time.Now()
	st, err := core.BuildMultiSource(g, srcs, &core.Options{Seed: cfg.seed, Ctx: ctx}, core.BuildSingle)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "zipf workload: n=%d m=%d sources=%d events=%d skew=%.2f queries=%d (structure: %d edges, built in %v)\n",
		g.N(), g.M(), len(srcs), cfg.events, cfg.skew, cfg.queries,
		st.NumEdges(), time.Since(start).Round(time.Millisecond))

	// The event universe: distinct single-edge faults, popularity-ranked
	// by a random permutation so event rank is uncorrelated with edge ID.
	rng := rand.New(rand.NewSource(cfg.seed))
	if cfg.events > g.M() {
		cfg.events = g.M()
	}
	perm := rng.Perm(g.M())[:cfg.events]

	// One pre-generated stream, shared by every arm: Zipf-ranked source
	// and event picks, uniform targets.
	zsrc := rand.NewZipf(rng, cfg.skew, 1, uint64(len(srcs)-1))
	zev := rand.NewZipf(rng, cfg.skew, 1, uint64(cfg.events-1))
	stream := make([]zipfQuery, cfg.queries)
	for i := range stream {
		stream[i] = zipfQuery{
			src:    int(zsrc.Uint64()),
			ev:     int(zev.Uint64()),
			target: rng.Intn(g.N()),
		}
	}

	fmt.Fprintf(stdout, "%12s  %-6s %9s %11s %8s %12s\n",
		"budget", "memo", "entries", "bytes/entry", "hit%", "q/s")
	for _, budget := range cfg.budgets {
		if err := ctx.Err(); err != nil {
			return err
		}
		fullEntries := int(budget / (4 * int64(g.N())))
		if fullEntries < 1 {
			fullEntries = 1
		}
		arms := []struct {
			name string
			mk   func() (*oracle.OracleSet, error)
		}{
			{"full", func() (*oracle.OracleSet, error) { return oracle.NewSetCapacity(st, fullEntries) }},
			{"delta", func() (*oracle.OracleSet, error) { return oracle.NewSetBytes(st, budget) }},
		}
		for _, arm := range arms {
			set, err := arm.mk()
			if err != nil {
				return err
			}
			o := set.Handle()
			fault := make([]int, 1)
			start := time.Now()
			for _, q := range stream {
				fault[0] = perm[q.ev]
				if _, err := o.Dist(srcs[q.src], q.target, fault); err != nil {
					return err
				}
			}
			elapsed := time.Since(start)
			cs := set.CacheStats()
			// The full arm emulates the pre-delta design, which charged
			// every entry a 4n-byte table; report that nominal cost, not
			// what the entries happen to cost in the new encoding.
			bytesPer := 4 * int64(g.N())
			if arm.name == "delta" && cs.Len > 0 {
				bytesPer = cs.BytesUsed / int64(cs.Len)
			}
			hitRate := 100 * float64(cs.Hits) / float64(cs.Hits+cs.Misses)
			fmt.Fprintf(stdout, "%12d  %-6s %9d %11d %7.1f%% %12.0f\n",
				budget, arm.name, cs.Len, bytesPer, hitRate,
				float64(len(stream))/elapsed.Seconds())
		}
	}
	return nil
}
