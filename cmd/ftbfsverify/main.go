// Command ftbfsverify checks a structure file against a graph file:
// is H an f-failure FT-MBFS structure of G for the given sources?
//
// Usage:
//
//	ftbfsverify -graph g.txt -structure h.txt -sources 0,5 -f 2 [-sampled N]
//	ftbfsverify -snapshot s.ftbfs [-sampled N]
//
// With -snapshot, the graph, structure, sources and fault model all come
// from a binary snapshot file (internal/snap format, as persisted by
// ftbfsd or packed by ftbfssnap) — no rebuild, no text parsing; -sources
// and -f override the snapshot's recorded values when given explicitly.
//
// An exhaustive pass over a big instance can run for minutes; SIGINT (or
// -timeout) cancels it cooperatively and the run exits 1 reporting how
// far it got instead of leaving the terminal hostage.
//
// Exit status 0 when the structure verifies, 2 when violations were found.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/edgelist"
	"repro/internal/graph"
	"repro/internal/snap"
	"repro/internal/verify"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftbfsverify:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("ftbfsverify", flag.ContinueOnError)
	var (
		graphPath  = fs.String("graph", "", "graph edge-list file")
		structPath = fs.String("structure", "", "structure edge-list file (subset of graph)")
		snapPath   = fs.String("snapshot", "", "verify a binary snapshot file instead of edge lists")
		sourcesArg = fs.String("sources", "0", "comma-separated source vertices")
		f          = fs.Int("f", 2, "fault budget (0..2 exhaustive; >2 requires -sampled)")
		sampled    = fs.Int("sampled", 0, "use N random fault sets instead of exhaustive")
		seed       = fs.Int64("seed", 1, "sampling seed")
		timeout    = fs.Duration("timeout", 0, "abort the pass after this long (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	explicit := map[string]bool{}
	fs.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })
	var (
		g            *graph.Graph
		off, sources []int
		keptEdges    int
		vertexFaults bool
	)
	switch {
	case *snapPath != "":
		if *graphPath != "" || *structPath != "" {
			return 1, fmt.Errorf("-snapshot excludes -graph/-structure")
		}
		sn, err := snap.ReadFile(*snapPath)
		if err != nil {
			return 1, err
		}
		st := sn.Structure
		g = st.G
		keptEdges = st.NumEdges()
		off = st.DisabledEdges()
		vertexFaults = st.VertexFaults
		if !explicit["sources"] {
			sources = st.Sources
		}
		if !explicit["f"] {
			*f = st.Faults
		}
	case *graphPath != "" && *structPath != "":
		g2, err := readFile(*graphPath)
		if err != nil {
			return 1, err
		}
		g = g2
		h, err := readFile(*structPath)
		if err != nil {
			return 1, err
		}
		if h.N() != g.N() {
			return 1, fmt.Errorf("vertex counts differ: graph %d, structure %d", g.N(), h.N())
		}
		// Structure must be a subgraph; translate to "edges of g missing
		// in h".
		for id := 0; id < g.M(); id++ {
			e := g.EdgeAt(id)
			if !h.HasEdge(e.U, e.V) {
				off = append(off, id)
			}
		}
		for _, e := range h.Edges() {
			if !g.HasEdge(e.U, e.V) {
				return 1, fmt.Errorf("structure edge %v not in graph", e)
			}
		}
		keptEdges = h.M()
	default:
		return 1, fmt.Errorf("need -graph and -structure, or -snapshot")
	}
	if sources == nil {
		for _, s := range strings.Split(*sourcesArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 0 || v >= g.N() {
				return 1, fmt.Errorf("bad source %q", s)
			}
			sources = append(sources, v)
		}
	}
	vopts := &verify.Options{Ctx: ctx}
	var rep verify.Report
	switch {
	case vertexFaults:
		if *sampled > 0 {
			return 1, fmt.Errorf("-sampled is not supported for vertex-failure structures (verification is exhaustive)")
		}
		rep = verify.VertexFTBFS(g, off, sources, *f, vopts)
	case *sampled > 0:
		rep = verify.Sampled(g, off, sources, *f, *sampled, *seed, vopts)
	default:
		rep = verify.FTBFS(g, off, sources, *f, vopts)
	}
	// A recorded violation is definitive (the structure is invalid no
	// matter what the unchecked fault sets would say), so an interrupted
	// pass only counts as inconclusive when it found nothing.
	if rep.Interrupted && len(rep.Violations) == 0 {
		return 1, fmt.Errorf("interrupted after %d fault sets (%v); nothing proven about the rest",
			rep.FaultSetsChecked, ctx.Err())
	}
	if rep.OK {
		fmt.Fprintf(stdout, "OK: %d fault sets checked (%d pruned), structure %d/%d edges\n",
			rep.FaultSetsChecked, rep.FaultSetsPruned, keptEdges, g.M())
		return 0, nil
	}
	suffix := ""
	if rep.Interrupted {
		suffix = " (interrupted; remaining fault sets unchecked)"
	}
	fmt.Fprintf(stdout, "FAILED: %d fault sets checked%s, violations:\n", rep.FaultSetsChecked, suffix)
	for _, v := range rep.Violations {
		fmt.Fprintf(stdout, "  %s\n", v)
	}
	return 2, nil
}

func readFile(path string) (*graph.Graph, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return edgelist.Read(fh)
}
