package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/snap"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVerifyAccepts(t *testing.T) {
	dir := t.TempDir()
	// A 4-cycle: the cycle itself is a valid f=1 structure of itself.
	g := writeFile(t, dir, "g.txt", "n 4\n0 1\n1 2\n2 3\n0 3\n")
	h := writeFile(t, dir, "h.txt", "n 4\n0 1\n1 2\n2 3\n0 3\n")
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-graph", g, "-structure", h, "-f", "1"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v out=%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "OK:") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestVerifyRejects(t *testing.T) {
	dir := t.TempDir()
	g := writeFile(t, dir, "g.txt", "n 4\n0 1\n1 2\n2 3\n0 3\n")
	// Structure missing edge 0-3: fails already at f=0 (dist to 3 doubles).
	h := writeFile(t, dir, "h.txt", "n 4\n0 1\n1 2\n2 3\n")
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-graph", g, "-structure", h, "-f", "0"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 || !strings.Contains(out.String(), "FAILED") {
		t.Fatalf("code=%d out=%s", code, out.String())
	}
}

func TestVerifySampledMode(t *testing.T) {
	dir := t.TempDir()
	g := writeFile(t, dir, "g.txt", "n 4\n0 1\n1 2\n2 3\n0 3\n")
	h := writeFile(t, dir, "h.txt", "n 4\n0 1\n1 2\n2 3\n0 3\n")
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-graph", g, "-structure", h, "-f", "3", "-sampled", "50"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
}

func TestVerifyMultiSource(t *testing.T) {
	dir := t.TempDir()
	g := writeFile(t, dir, "g.txt", "n 3\n0 1\n1 2\n0 2\n")
	h := writeFile(t, dir, "h.txt", "n 3\n0 1\n1 2\n0 2\n")
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-graph", g, "-structure", h, "-sources", "0, 2", "-f", "1"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
}

func TestVerifyErrors(t *testing.T) {
	dir := t.TempDir()
	g := writeFile(t, dir, "g.txt", "n 3\n0 1\n1 2\n")
	hBig := writeFile(t, dir, "hbig.txt", "n 4\n0 1\n")
	hExtra := writeFile(t, dir, "hextra.txt", "n 3\n0 2\n")
	cases := [][]string{
		{},            // missing flags
		{"-graph", g}, // missing structure
		{"-graph", g, "-structure", "/nonexistent"},
		{"-graph", g, "-structure", hBig},   // vertex count mismatch
		{"-graph", g, "-structure", hExtra}, // structure edge not in graph
		{"-graph", g, "-structure", g, "-sources", "9"},
		{"-graph", g, "-structure", g, "-sources", "x"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if _, err := run(context.Background(), args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestVerifySnapshotInput(t *testing.T) {
	dir := t.TempDir()
	st, err := core.BuildDual(gen.GNP(24, 0.25, 3), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "s.ftbfs")
	if err := snap.WriteFile(path, &snap.Snapshot{Structure: st, Meta: snap.Meta{Mode: "dual"}}); err != nil {
		t.Fatal(err)
	}
	// Sources and fault budget come from the snapshot; no rebuild happens.
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-snapshot", path}, &out)
	if err != nil || code != 0 || !strings.Contains(out.String(), "OK:") {
		t.Fatalf("code=%d err=%v out=%s", code, err, out.String())
	}
	// Explicit -f overrides the recorded budget: the dual structure is
	// also a valid f=1 structure.
	out.Reset()
	code, err = run(context.Background(), []string{"-snapshot", path, "-f", "1"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("override: code=%d err=%v out=%s", code, err, out.String())
	}
	// Sampled mode works off a snapshot too.
	out.Reset()
	code, err = run(context.Background(), []string{"-snapshot", path, "-sampled", "40"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("sampled: code=%d err=%v out=%s", code, err, out.String())
	}
}

func TestVerifySnapshotVertexModel(t *testing.T) {
	dir := t.TempDir()
	st, err := core.BuildVertexExhaustive(gen.GNP(16, 0.3, 5), 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "s.ftbfs")
	if err := snap.WriteFile(path, &snap.Snapshot{Structure: st}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-snapshot", path}, &out)
	if err != nil || code != 0 || !strings.Contains(out.String(), "OK:") {
		t.Fatalf("vertex model: code=%d err=%v out=%s", code, err, out.String())
	}
}

func TestVerifySnapshotExcludesEdgeLists(t *testing.T) {
	dir := t.TempDir()
	g := writeFile(t, dir, "g.txt", "n 3\n0 1\n1 2\n")
	var out bytes.Buffer
	if _, err := run(context.Background(), []string{"-snapshot", "x.ftbfs", "-graph", g}, &out); err == nil {
		t.Fatal("-snapshot with -graph accepted")
	}
}

// TestInterruptedWithViolationIsDefinitive: a violation recorded before
// the interruption is conclusive — the tool must report FAILED (exit 2)
// with the counterexample, not discard it as "nothing proven". The
// fault-free base check runs before any poll point, so a pre-cancelled
// context still records an f=0 violation deterministically.
func TestInterruptedWithViolation(t *testing.T) {
	dir := t.TempDir()
	g := writeFile(t, dir, "g.txt", "n 4\n0 1\n1 2\n2 3\n")
	h := writeFile(t, dir, "h.txt", "n 4\n0 1\n1 2\n") // missing 2-3: fault-free distances broken
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	code, err := run(ctx, []string{"-graph", g, "-structure", h, "-f", "2"}, &out)
	if err != nil {
		t.Fatalf("definitive failure reported as inconclusive: %v", err)
	}
	if code != 2 {
		t.Fatalf("exit %d, want 2; output: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAILED") || !strings.Contains(out.String(), "interrupted") {
		t.Fatalf("output missing FAILED/interrupted note: %s", out.String())
	}
}
