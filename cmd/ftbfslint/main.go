// Command ftbfslint runs the repo's static-analysis suite
// (repro/internal/lint) over Go packages. It speaks the `go vet -vettool`
// unit-checker protocol, so the canonical invocation is
//
//	go build -o ftbfslint ./cmd/ftbfslint
//	go vet -vettool=$PWD/ftbfslint ./...
//
// in which mode the go command invokes this binary once per package with a
// JSON config file describing the package's sources and the export data of
// its dependencies. Invoked any other way (e.g. `ftbfslint ./...`), the
// binary re-executes `go vet -vettool=<itself>` with the given package
// patterns, so both spellings work.
//
// Exit status: 0 no findings, 1 tool error, 2 findings (matching vet).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// The go command asks a vettool for its flag set before use; this
		// suite has no tool-level flags.
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitCheck(args[0]))
	case len(args) >= 1 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help"):
		usage()
	default:
		standalone(args)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ftbfslint [packages]  (or as go vet -vettool=ftbfslint)\n\nanalyzers:\n")
	for _, a := range lint.Suite() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress a finding with //lint:ignore <analyzer> <reason> on or above its line\n")
	os.Exit(2)
}

// printVersion implements the -V=full handshake the go command uses to
// fingerprint vet tools for build caching: the tool must print one line
// ending in a content hash of itself.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)[:12]))
	os.Exit(0)
}

// standalone re-invokes the suite through `go vet -vettool=<self>` so that
// the go command handles package loading, export data and caching.
func standalone(patterns []string) {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fatal(err)
	}
	os.Exit(0)
}

// vetConfig is the JSON the go command writes for each package when
// driving a -vettool (the unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	ModulePath                string
	ModuleVersion             string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a closure to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func unitCheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing vet config %s: %w", cfgFile, err))
	}

	// The go command requires the facts file to exist even though this
	// suite exports none; without it the result is not cached.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0 // downstream packages only need facts, and we have none
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fatal(err)
		}
		files = append(files, f)
	}

	// Dependencies arrive as compiler export data: ImportMap resolves the
	// source-level import path to the canonical package path, PackageFile
	// locates that package's export file.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		canonical, ok := cfg.ImportMap[path]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", path)
		}
		return compilerImporter.Import(canonical)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err))
	}

	diags, err := lint.RunAnalyzers(fset, files, pkg, info, lint.Suite())
	if err != nil {
		fatal(err)
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	return 2
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ftbfslint: %v\n", err)
	os.Exit(1)
}
