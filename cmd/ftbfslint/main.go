// Command ftbfslint runs the repo's static-analysis suite
// (repro/internal/lint) over Go packages. It speaks the `go vet -vettool`
// unit-checker protocol, so the canonical invocation is
//
//	go build -o ftbfslint ./cmd/ftbfslint
//	go vet -vettool=$PWD/ftbfslint ./...
//
// in which mode the go command invokes this binary once per package with a
// JSON config file describing the package's sources and the export data of
// its dependencies. The whole-program analyzers ride the same protocol:
// lock-order facts are serialized to each package's vetx output and read
// back from dependencies' vetx files, so cross-package acquisition edges
// survive the per-package invocation model (and the go command's vet
// cache). Invoked any other way (e.g. `ftbfslint ./...`), the binary
// re-executes `go vet -vettool=<itself>` with the given arguments, so both
// spellings work.
//
// Flags (forwarded by the go command when given to `go vet`):
//
//	-json          emit findings as NDJSON on stdout (one object per line)
//	-timing        print per-analyzer wall time to stderr
//	-update-locks  regenerate snapschema.lock/apisurface.lock and exit
//
// Exit status: 0 no findings, 1 tool error, 2 findings (matching vet).
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/lint"
)

var (
	flagV           = flag.String("V", "", "print version and exit (the go command's vettool handshake)")
	flagFlags       = flag.Bool("flags", false, "print the tool's flag set as JSON and exit")
	flagJSON        = flag.Bool("json", false, "emit findings as NDJSON on stdout")
	flagTiming      = flag.Bool("timing", false, "print per-analyzer wall time to stderr")
	flagUpdateLocks = flag.Bool("update-locks", false, "regenerate snapschema.lock/apisurface.lock instead of checking them")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	switch {
	case *flagV != "":
		printVersion()
	case *flagFlags:
		printFlags()
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitCheck(args[0]))
	case *flagUpdateLocks:
		regenerateLocks()
	default:
		standalone()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ftbfslint [-json] [-timing] [packages]  (or as go vet -vettool=ftbfslint)\n")
	fmt.Fprintf(os.Stderr, "       ftbfslint -update-locks\n\nanalyzers:\n")
	for _, a := range lint.Suite() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress a finding with //lint:ignore <analyzer> <reason> on or above its line\n")
	os.Exit(2)
}

// printVersion implements the -V=full handshake the go command uses to
// fingerprint vet tools for build caching: the tool must print one line
// ending in a content hash of itself.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)[:12]))
	os.Exit(0)
}

// printFlags answers the go command's -flags probe. Declared flags become
// acceptable on the `go vet` command line, are forwarded to every unit
// invocation, and enter the vet cache key (so `-update-locks` runs are
// never served from a stale cache).
func printFlags() {
	type toolFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	out := []toolFlag{
		{"json", true, "emit findings as NDJSON on stdout"},
		{"timing", true, "print per-analyzer wall time to stderr"},
		{"update-locks", true, "regenerate snapschema.lock/apisurface.lock instead of checking them"},
	}
	data, err := json.Marshal(out)
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(data))
	os.Exit(0)
}

// standalone re-invokes the suite through `go vet -vettool=<self>` so that
// the go command handles package loading, export data and caching. All
// original arguments are forwarded verbatim: the go command accepts the
// flags this tool declared in its -flags answer. With -json, NDJSON lines
// (which the go command relays on its stderr) are routed back to stdout,
// so `ftbfslint -json ./... > findings.ndjson` does the expected thing.
func standalone() {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, os.Args[1:]...)...)
	cmd.Stdout = os.Stdout
	if *flagJSON {
		pr, pw, err := os.Pipe()
		if err != nil {
			fatal(err)
		}
		cmd.Stderr = pw
		done := make(chan struct{})
		go func() {
			defer close(done)
			sc := bufio.NewScanner(pr)
			sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
			for sc.Scan() {
				line := sc.Text()
				if strings.HasPrefix(line, "{") {
					fmt.Fprintln(os.Stdout, line)
				} else {
					fmt.Fprintln(os.Stderr, line)
				}
			}
		}()
		err = cmd.Run()
		pw.Close()
		<-done
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			fatal(err)
		}
		os.Exit(0)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fatal(err)
	}
	os.Exit(0)
}

// vetConfig is the JSON the go command writes for each package when
// driving a -vettool (the unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	ModulePath                string
	ModuleVersion             string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a closure to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func unitCheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing vet config %s: %w", cfgFile, err))
	}
	deps := readDepFacts(cfg.PackageVetx)

	// VetxOnly: the go command only needs this package's facts for a
	// downstream target. Lock-scope packages get the real extraction;
	// everything else forwards its dependencies' edges without even
	// parsing, so the pre-pass stays cheap on the long tail.
	if cfg.VetxOnly && !lint.LockScopePath(cfg.ImportPath) {
		writeFacts(cfg.VetxOutput, lint.PassthroughFacts(cfg.ImportPath, deps))
		return 0
	}

	fset, files, pkg, info, ret := typecheckUnit(&cfg)
	if files == nil {
		// Typecheck failed with SucceedOnTypecheckFailure; still satisfy
		// the facts contract so downstream units load.
		writeFacts(cfg.VetxOutput, lint.PassthroughFacts(cfg.ImportPath, deps))
		return ret
	}

	if cfg.VetxOnly {
		writeFacts(cfg.VetxOutput, lint.ComputeLockFacts(fset, files, pkg, info, deps))
		return 0
	}

	lcfg := &lint.Config{
		ModulePath:  cfg.ModulePath,
		LockDir:     findLockDir(cfg.Dir),
		UpdateLocks: *flagUpdateLocks,
		Deps:        deps,
	}
	if *flagTiming {
		lcfg.Timings = make(map[string]time.Duration)
	}
	diags, err := lint.RunAnalyzers(fset, files, pkg, info, lint.Suite(), lcfg)
	if err != nil {
		fatal(err)
	}
	facts := lcfg.Facts
	if facts == nil {
		facts = lint.PassthroughFacts(cfg.ImportPath, deps)
	}
	writeFacts(cfg.VetxOutput, facts)

	if *flagTiming {
		for _, name := range sortedTimingKeys(lcfg.Timings) {
			fmt.Fprintf(os.Stderr, "ftbfslint: timing %s %s %s\n", cfg.ImportPath, name, lcfg.Timings[name].Round(time.Microsecond))
		}
	}
	if len(diags) == 0 {
		return 0
	}
	// One rendering per mode: the human format on stderr is what the CI
	// problem matcher parses; -json replaces it with NDJSON. The go
	// command merges a vettool's stdout into its own stderr stream, so
	// NDJSON is emitted there too — the standalone wrapper demultiplexes
	// it back onto stdout.
	enc := json.NewEncoder(os.Stderr)
	for _, d := range diags {
		if *flagJSON {
			enc.Encode(map[string]any{
				"file":     d.Pos.Filename,
				"line":     d.Pos.Line,
				"col":      d.Pos.Column,
				"analyzer": d.Analyzer,
				"message":  d.Message,
			})
		} else {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
		}
	}
	return 2
}

// typecheckUnit parses and type-checks the unit's sources against its
// dependencies' compiler export data. On tolerated failure it returns a
// nil file slice and the process exit code.
func typecheckUnit(cfg *vetConfig) (*token.FileSet, []*ast.File, *types.Package, *types.Info, int) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return fset, nil, nil, nil, 0
			}
			fatal(err)
		}
		files = append(files, f)
	}

	// Dependencies arrive as compiler export data: ImportMap resolves the
	// source-level import path to the canonical package path, PackageFile
	// locates that package's export file.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		canonical, ok := cfg.ImportMap[path]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", path)
		}
		return compilerImporter.Import(canonical)
	})

	info := newTypeInfo()
	tcfg := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return fset, nil, nil, nil, 0
		}
		fatal(fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err))
	}
	return fset, files, pkg, info, 0
}

func newTypeInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// readDepFacts loads the lock-order facts of every dependency's vetx
// file, in deterministic (path-sorted) order. Absent or empty files —
// packages built by an older tool, or std packages vetted without
// facts — decode to nil and are skipped.
func readDepFacts(vetx map[string]string) []*lint.PackageFacts {
	paths := make([]string, 0, len(vetx))
	for p := range vetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var deps []*lint.PackageFacts
	for _, p := range paths {
		data, err := os.ReadFile(vetx[p])
		if err != nil {
			continue
		}
		if f := lint.DecodeFacts(data); f != nil {
			deps = append(deps, f)
		}
	}
	return deps
}

// writeFacts satisfies the go command's facts contract: the vetx output
// file must exist for the unit's result to be cached.
func writeFacts(path string, facts *lint.PackageFacts) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, lint.EncodeFacts(facts), 0o666); err != nil {
		fatal(err)
	}
}

// findLockDir walks up from the unit's directory to the module root (the
// directory holding go.mod) and returns its lock-file directory, or ""
// when there is none — which disables the schema-lock analyzers, e.g.
// when vetting a checkout that predates them.
func findLockDir(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			ld := filepath.Join(d, "internal", "lint", "testdata")
			if st, err := os.Stat(ld); err == nil && st.IsDir() {
				return ld
			}
			return ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}

func sortedTimingKeys(m map[string]time.Duration) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- standalone lock regeneration ----

// listedPkg is the slice of `go list -json` output regenerateLocks needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
}

// regenerateLocks rewrites both lock files from the current tree. It goes
// through `go list -export -deps` rather than `go vet` so regeneration is
// a single deterministic pass over exactly two packages (the facade and
// internal/snap), with dependencies loaded from compiler export data.
func regenerateLocks() {
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath := findModule(wd)
	if root == "" {
		fatal(fmt.Errorf("-update-locks: no go.mod found above %s", wd))
	}
	lockDir := filepath.Join(root, "internal", "lint", "testdata")
	if err := os.MkdirAll(lockDir, 0o755); err != nil {
		fatal(err)
	}
	targets := []string{modPath, modPath + "/internal/snap"}

	cmd := exec.Command("go", append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles"}, targets...)...)
	cmd.Dir = root
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fatal(fmt.Errorf("go list -export: %w", err))
	}
	exports := make(map[string]string)
	pkgs := make(map[string]*listedPkg)
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			fatal(fmt.Errorf("parsing go list output: %w", err))
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkgs[p.ImportPath] = &p
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	for _, target := range targets {
		lp := pkgs[target]
		if lp == nil {
			fatal(fmt.Errorf("-update-locks: %s not found by go list", target))
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				fatal(err)
			}
			files = append(files, f)
		}
		info := newTypeInfo()
		tcfg := types.Config{Importer: imp, Sizes: types.SizesFor("gc", build.Default.GOARCH)}
		pkg, err := tcfg.Check(target, fset, files, info)
		if err != nil {
			fatal(fmt.Errorf("type-checking %s: %w", target, err))
		}
		lcfg := &lint.Config{ModulePath: modPath, LockDir: lockDir, UpdateLocks: true}
		if _, err := lint.RunAnalyzers(fset, files, pkg, info, []*lint.Analyzer{lint.SnapSchema, lint.APISurface}, lcfg); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "ftbfslint: wrote %s and %s\n",
		filepath.Join(lockDir, lint.SnapSchemaLockFile), filepath.Join(lockDir, lint.APISurfaceLockFile))
	os.Exit(0)
}

// findModule walks up from dir to the first go.mod and returns the module
// root directory and module path ("", "" when none).
func findModule(dir string) (string, string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest)
				}
			}
			return d, ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ftbfslint: %v\n", err)
	os.Exit(1)
}
