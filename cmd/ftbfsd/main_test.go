package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestDaemonEndToEnd boots the daemon on a free port with the demo graph,
// drives the quickstart sequence over real HTTP, and shuts it down with
// SIGTERM.
func TestDaemonEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", addr, "-demo"}) }()

	base := "http://" + addr
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Wait for the daemon to come up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon did not come up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The -demo graph is pre-registered; build and query it.
	resp, err := http.Post(base+"/v1/graphs/demo/builds", "application/json",
		strings.NewReader(`{"mode":"dual","sources":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	var build struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&build); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for build.Status == "queued" || build.Status == "building" {
		if time.Now().After(deadline) {
			t.Fatal("build did not finish")
		}
		time.Sleep(20 * time.Millisecond)
		_, body := get("/v1/graphs/demo/builds/" + build.ID)
		if err := json.Unmarshal(body, &build); err != nil {
			t.Fatal(err)
		}
	}
	if build.Status != "ready" {
		t.Fatalf("build status %q", build.Status)
	}
	code, body := get(fmt.Sprintf("/v1/graphs/demo/builds/%s/dist?source=0&target=17&faults=3,9", build.ID))
	if code != http.StatusOK {
		t.Fatalf("dist: %d %s", code, body)
	}
	var dr struct {
		Dist      int32 `json:"dist"`
		Reachable bool  `json:"reachable"`
	}
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Reachable || dr.Dist <= 0 {
		t.Fatalf("unexpected answer: %+v", dr)
	}

	// Graceful shutdown on SIGTERM.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
