package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestDaemonEndToEnd boots the daemon on a free port with the demo graph,
// drives the quickstart sequence over real HTTP, and shuts it down with
// SIGTERM.
func TestDaemonEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", addr, "-demo"}) }()

	base := "http://" + addr
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Wait for the daemon to come up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon did not come up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The -demo graph is pre-registered; build and query it.
	resp, err := http.Post(base+"/v1/graphs/demo/builds", "application/json",
		strings.NewReader(`{"mode":"dual","sources":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	var build struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&build); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for build.Status == "queued" || build.Status == "building" {
		if time.Now().After(deadline) {
			t.Fatal("build did not finish")
		}
		time.Sleep(20 * time.Millisecond)
		_, body := get("/v1/graphs/demo/builds/" + build.ID)
		if err := json.Unmarshal(body, &build); err != nil {
			t.Fatal(err)
		}
	}
	if build.Status != "ready" {
		t.Fatalf("build status %q", build.Status)
	}
	code, body := get(fmt.Sprintf("/v1/graphs/demo/builds/%s/dist?source=0&target=17&faults=3,9", build.ID))
	if code != http.StatusOK {
		t.Fatalf("dist: %d %s", code, body)
	}
	var dr struct {
		Dist      int32 `json:"dist"`
		Reachable bool  `json:"reachable"`
	}
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Reachable || dr.Dist <= 0 {
		t.Fatalf("unexpected answer: %+v", dr)
	}

	// Graceful shutdown on SIGTERM.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonSnapshotRestart boots the daemon with -snapshot-dir, builds a
// structure, shuts down, boots a FRESH daemon over the same directory, and
// requires the build to be served immediately — marked restored, with a
// bit-identical answer — without any rebuild.
func TestDaemonSnapshotRestart(t *testing.T) {
	dir := t.TempDir()
	freeAddr := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	getJSON := func(base, path string, into any) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if into != nil {
			if err := json.Unmarshal(b, into); err != nil {
				t.Fatalf("GET %s: bad JSON %q: %v", path, b, err)
			}
		}
		return resp.StatusCode
	}
	waitUp := func(base string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon did not come up: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	shutdown := func(done chan error) {
		t.Helper()
		p, err := os.FindProcess(os.Getpid())
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}

	type build struct {
		ID       string `json:"id"`
		Status   string `json:"status"`
		Snapshot string `json:"snapshot"`
		Restored bool   `json:"restored"`
	}

	// Instance 1: build and wait until the snapshot is durable.
	addr1 := freeAddr()
	done1 := make(chan error, 1)
	go func() { done1 <- run([]string{"-addr", addr1, "-demo", "-snapshot-dir", dir}) }()
	base1 := "http://" + addr1
	waitUp(base1)
	resp, err := http.Post(base1+"/v1/graphs/demo/builds", "application/json",
		strings.NewReader(`{"mode":"dual","sources":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	var b build
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for b.Status != "ready" || b.Snapshot == "pending" {
		if time.Now().After(deadline) {
			t.Fatalf("build/snapshot did not complete: %+v", b)
		}
		time.Sleep(20 * time.Millisecond)
		getJSON(base1, "/v1/graphs/demo/builds/"+b.ID, &b)
	}
	if b.Snapshot != "saved" {
		t.Fatalf("snapshot state %q", b.Snapshot)
	}
	distPath := "/v1/graphs/demo/builds/" + b.ID + "/dist?source=0&target=17&faults=3,9"
	var pre, post map[string]any
	if code := getJSON(base1, distPath, &pre); code != http.StatusOK {
		t.Fatalf("dist: %d", code)
	}
	shutdown(done1)

	// Instance 2: fresh process state, same directory — warm start.
	addr2 := freeAddr()
	done2 := make(chan error, 1)
	go func() { done2 <- run([]string{"-addr", addr2, "-snapshot-dir", dir}) }()
	base2 := "http://" + addr2
	waitUp(base2)
	var restored build
	if code := getJSON(base2, "/v1/graphs/demo/builds/"+b.ID, &restored); code != http.StatusOK {
		t.Fatalf("restored build lookup: %d", code)
	}
	if restored.Status != "ready" || !restored.Restored {
		t.Fatalf("restored build = %+v, want ready+restored with no rebuild", restored)
	}
	if code := getJSON(base2, distPath, &post); code != http.StatusOK {
		t.Fatalf("dist after restart: %d", code)
	}
	if fmt.Sprint(pre) != fmt.Sprint(post) {
		t.Fatalf("answers differ after restart: %v vs %v", pre, post)
	}
	shutdown(done2)
}
