// Command ftbfsd serves fault-tolerant BFS distance and routing queries
// over HTTP — the paper's motivating scenario (routing under failures) as
// a long-lived concurrent service.
//
// Usage:
//
//	ftbfsd -addr :8080
//	ftbfsd -addr :8080 -demo        # also registers graph "demo" (gnp n=200)
//	ftbfsd -addr :8080 -snapshot-dir /var/lib/ftbfs
//
// With -snapshot-dir, completed builds are persisted as binary snapshots
// under the directory and the daemon warm-starts from it: on restart every
// stored graph/build is rehydrated — ready to serve, bit-identical
// answers — without re-running any builder.
//
// Quick start against a running daemon:
//
//	curl -s -X POST localhost:8080/v1/graphs \
//	  -d '{"name":"demo","gen":{"family":"gnp","n":200,"p":0.05,"seed":7}}'
//	curl -s -X POST localhost:8080/v1/graphs/demo/builds \
//	  -d '{"mode":"dual","sources":[0]}'
//	curl -s 'localhost:8080/v1/graphs/demo/builds/b1'            # poll "queued"/"building" until "ready";
//	                                                             # running builds report live "progress"
//	curl -s -X DELETE 'localhost:8080/v1/graphs/demo/builds/b1'  # cancel a running/queued build
//	curl -s 'localhost:8080/v1/stats'                            # build slots, queue depth, cache totals
//	curl -s 'localhost:8080/v1/graphs/demo/builds/b1/dist?source=0&target=17&faults=3,9'
//	curl -s -X POST localhost:8080/v1/graphs/demo/builds/b1/query \
//	  -d '{"queries":[{"source":0,"target":17,"faults":[3,9]},{"source":0,"faults":[3]}]}'
//
// See DESIGN.md for the full API (including NDJSON batch streaming).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ftbfsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ftbfsd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		builds     = fs.Int("builds", 0, "max concurrent structure builds (0 = GOMAXPROCS)")
		cache      = fs.Int("cache", 0, "memo entry cap per build (0 = no cap, the byte budget governs; <0 = disable memoization)")
		cacheBytes = fs.Int64("cache-bytes", 0, "memo byte budget per build; delta-compressed events are charged what the fault changed (0 = default 256 MiB, <0 = no byte bound)")
		shards     = fs.Int("cache-shards", 0, "memo shards per build (0 = auto: ~GOMAXPROCS, power of two)")
		maxBatch   = fs.Int("max-batch", 0, "max queries per batch request (0 = default 65536)")
		ordered    = fs.Bool("ordered", false, "renumber registered graphs into BFS vertex order (wire IDs unchanged; per-graph \"ordered\" field overrides)")
		snapDir    = fs.String("snapshot-dir", "", "persist completed builds under this directory and warm-start from it")
		prewarm    = fs.Bool("prewarm", false, "after a warm start, seed each restored build's query memo with its fault-free distance tables")
		demo       = fs.Bool("demo", false, "register a demo graph (gnp n=200 p=0.05 seed=7) at startup")
		rtimeout   = fs.Duration("read-timeout", 30*time.Second, "HTTP read timeout")
		wtimeout   = fs.Duration("write-timeout", 60*time.Second, "HTTP write timeout")
		idleLimit  = fs.Duration("idle-timeout", 2*time.Minute, "HTTP idle timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := &server.Config{
		MaxConcurrentBuilds: *builds,
		CacheEntries:        *cache,
		CacheBytes:          *cacheBytes,
		CacheShards:         *shards,
		MaxBatchQueries:     *maxBatch,
		OrderVertices:       *ordered,
		PrewarmRestored:     *prewarm,
		// One structured line per terminal build so operators can audit
		// the build plane (completions AND cancellations) without polling.
		BuildLog: func(e server.BuildEvent) {
			switch e.Status {
			case server.StatusReady:
				log.Printf("build graph=%s build=%s mode=%s sources=%v status=%s queuedMs=%.1f elapsedMs=%.1f dijkstras=%d edges=%d/%d",
					e.Graph, e.Build, e.Mode, e.Sources, e.Status, e.QueuedMS, e.ElapsedMS, e.Dijkstras, e.Edges, e.GraphEdges)
			case server.StatusFailed:
				log.Printf("build graph=%s build=%s mode=%s sources=%v status=%s queuedMs=%.1f elapsedMs=%.1f dijkstras=%d err=%q",
					e.Graph, e.Build, e.Mode, e.Sources, e.Status, e.QueuedMS, e.ElapsedMS, e.Dijkstras, e.Error)
			default: // cancelled
				log.Printf("build graph=%s build=%s mode=%s sources=%v status=%s queuedMs=%.1f elapsedMs=%.1f dijkstras=%d",
					e.Graph, e.Build, e.Mode, e.Sources, e.Status, e.QueuedMS, e.ElapsedMS, e.Dijkstras)
			}
		},
	}
	if *snapDir != "" {
		store, err := server.NewDiskStore(*snapDir)
		if err != nil {
			return err
		}
		cfg.Store = store
	}
	srv := server.New(cfg)
	if cfg.Store != nil {
		start := time.Now()
		restored, err := srv.WarmStart()
		if err != nil {
			// Partial warm starts are survivable: log what was skipped
			// and serve the rest.
			log.Printf("warm start: %v", err)
		}
		if restored > 0 {
			log.Printf("warm start: restored %d build(s) from %s in %v", restored, *snapDir, time.Since(start).Round(time.Millisecond))
		}
	}
	if *demo {
		if err := srv.RegisterDemo(); err != nil {
			log.Printf("demo graph: %v (already restored from snapshots?)", err)
		} else {
			log.Printf("registered demo graph %q", "demo")
		}
	}
	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  *rtimeout,
		WriteTimeout: *wtimeout,
		IdleTimeout:  *idleLimit,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("ftbfsd listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-sigc:
		log.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Drain the HTTP side, then cancel in-flight builds and wait for
		// their goroutines. Build cancellation runs even when the HTTP
		// drain times out on a stuck connection — builds must never be
		// silently abandoned, whatever the client side is doing.
		httpErr := httpSrv.Shutdown(ctx)
		if err := srv.Shutdown(ctx); err != nil {
			if httpErr != nil {
				return fmt.Errorf("%w (also: http drain: %v)", err, httpErr)
			}
			return err
		}
		return httpErr
	}
}
