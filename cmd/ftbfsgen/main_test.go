package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGenerateModes(t *testing.T) {
	for _, mode := range []string{"single", "dual", "exhaustive-f0", "exhaustive-f1", "approx-f1", "fullpaths"} {
		t.Run(mode, func(t *testing.T) {
			var out bytes.Buffer
			err := run([]string{"-gen", "gnp:20", "-mode", mode}, &out)
			if err != nil {
				t.Fatal(err)
			}
			s := out.String()
			if !strings.Contains(s, "# mode="+mode) || !strings.Contains(s, "n 20") {
				t.Fatalf("output missing header/body:\n%s", s[:min(200, len(s))])
			}
		})
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(in, []byte("n 4\n0 1\n1 2\n2 3\n0 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	outFile := filepath.Join(dir, "h.txt")
	var out bytes.Buffer
	if err := run([]string{"-in", in, "-mode", "dual", "-out", outFile}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "n 4\n") {
		t.Fatalf("structure file wrong:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                    // no input
		{"-gen", "nope:20"},                   // unknown family
		{"-gen", "gnp"},                       // malformed gen
		{"-gen", "gnp:1"},                     // too small
		{"-gen", "gnp:20", "-mode", "bogus"},  // unknown mode
		{"-in", "/nonexistent/file"},          // missing file
		{"-gen", "gnp:20", "-source", "99"},   // gen path ignores source bounds? validated on -in only
		{"-in", "/dev/null", "-source", "-1"}, // empty graph → bad source
	}
	for i, args := range cases {
		if i == 6 {
			continue // -gen path accepts any source for generated graphs by design of families with vertex 0 roots
		}
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestRunLowerBoundFamilies(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gen", "lb1:100", "-mode", "single", "-q"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n 100") {
		t.Fatalf("lb1 output wrong")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRunStatsAndDot(t *testing.T) {
	dir := t.TempDir()
	dotFile := filepath.Join(dir, "g.dot")
	var out bytes.Buffer
	if err := run([]string{"-gen", "gnp:16", "-mode", "dual", "-stats", "-dot", dotFile}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dotFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph ") || !strings.Contains(string(data), "--") {
		t.Fatalf("dot output wrong:\n%s", data)
	}
}
