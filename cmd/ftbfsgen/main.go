// Command ftbfsgen builds a fault-tolerant BFS structure from an edge-list
// graph and writes the structure's edge list to stdout.
//
// Usage:
//
//	ftbfsgen -in graph.txt -source 0 -mode dual [-seed 7] [-out h.txt]
//
// Modes: single (f=1, ESA'13), dual (f=2, Theorem 1.1), exhaustive-f0/1/2,
// approx-f1/f2 (Theorem 1.3), fullpaths (ablation).
// With -gen FAMILY:N a synthetic input is generated instead of -in
// (families: gnp, grid, layered, tree, lb1, lb2).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	ftbfs "repro"
	"repro/internal/dot"
	"repro/internal/edgelist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftbfsgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ftbfsgen", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "input graph file (edge list); - for stdin")
		genArg = fs.String("gen", "", "generate input instead: FAMILY:N (gnp, grid, layered, tree, lb1, lb2)")
		source = fs.Int("source", 0, "source vertex")
		mode   = fs.String("mode", "dual", "single | dual | exhaustive-f0 | exhaustive-f1 | exhaustive-f2 | approx-f1 | approx-f2 | fullpaths")
		seed   = fs.Int64("seed", 1, "tie-breaking seed")
		out    = fs.String("out", "", "write structure edge list to file (default: stdout)")
		quiet  = fs.Bool("q", false, "suppress the stats line")
		stats  = fs.Bool("stats", false, "print a full structure summary to stderr")
		dotOut = fs.String("dot", "", "also write a Graphviz rendering to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, src, err := loadGraph(*in, *genArg, *source)
	if err != nil {
		return err
	}
	opts := &ftbfs.Options{Seed: *seed}
	var st *ftbfs.Structure
	switch *mode {
	case "single":
		st, err = ftbfs.BuildSingleFTBFS(g, src, opts)
	case "dual":
		st, err = ftbfs.BuildDualFTBFS(g, src, opts)
	case "exhaustive-f0", "exhaustive-f1", "exhaustive-f2":
		f := int((*mode)[len(*mode)-1] - '0')
		st, err = ftbfs.BuildExhaustiveFTBFS(g, src, f, opts)
	case "approx-f1":
		st, err = ftbfs.BuildApproxFTMBFS(g, []int{src}, 1, opts)
	case "approx-f2":
		st, err = ftbfs.BuildApproxFTMBFS(g, []int{src}, 2, opts)
	case "fullpaths":
		st, err = ftbfs.BuildFullPathsFTBFS(g, src, opts)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(stdout, "# mode=%s n=%d m=%d structure=%d source=%d faults=%d\n",
			*mode, g.N(), g.M(), st.NumEdges(), src, st.Faults)
	}
	if *stats {
		fmt.Fprint(os.Stderr, st.Summary())
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		if err := dot.Write(f, g, dot.Options{Structure: st}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return edgelist.WriteSubset(w, g, st.Edges)
}

func loadGraph(in, genArg string, source int) (*ftbfs.Graph, int, error) {
	if genArg != "" {
		parts := strings.SplitN(genArg, ":", 2)
		if len(parts) != 2 {
			return nil, 0, fmt.Errorf("-gen wants FAMILY:N, got %q", genArg)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n < 2 {
			return nil, 0, fmt.Errorf("-gen size %q invalid", parts[1])
		}
		switch parts[0] {
		case "gnp":
			return ftbfs.SparseGNP(n, 6, 1), source, nil
		case "grid":
			s := 2
			for (s+1)*(s+1) <= n {
				s++
			}
			return ftbfs.Grid(s, s), source, nil
		case "layered":
			return ftbfs.Layered(6, (n+5)/6, 0.35, 1), source, nil
		case "tree":
			return ftbfs.TreePlusChords(n, n/10+1, 1), source, nil
		case "lb1", "lb2":
			f := int(parts[0][2] - '0')
			inst, err := ftbfs.LowerBound(f, n)
			if err != nil {
				return nil, 0, err
			}
			return inst.G, inst.Source, nil
		default:
			return nil, 0, fmt.Errorf("unknown family %q", parts[0])
		}
	}
	if in == "" {
		return nil, 0, fmt.Errorf("need -in FILE or -gen FAMILY:N")
	}
	var r io.Reader
	if in == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(in)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		r = f
	}
	g, err := edgelist.Read(r)
	if err != nil {
		return nil, 0, err
	}
	if source < 0 || source >= g.N() {
		return nil, 0, fmt.Errorf("source %d out of range [0,%d)", source, g.N())
	}
	return g, source, nil
}
