// Command ftbfssnap inspects and converts FT-BFS snapshot files (the
// internal/snap binary format that ftbfsd persists builds as).
//
// Usage:
//
//	ftbfssnap info s.ftbfs                 # layout, integrity, metadata, summary
//	ftbfssnap verify s.ftbfs               # full decode; exit 0 iff valid
//	ftbfssnap graph s.ftbfs                # G as an edge list on stdout
//	ftbfssnap structure s.ftbfs            # H as an edge list on stdout
//	ftbfssnap pack -graph g.txt -structure h.txt -sources 0,5 -f 2 -o s.ftbfs
//
// pack converts the text formats the other CLIs speak into a snapshot:
// the structure file must be an edge-subset of the graph file (the same
// containment rule ftbfsverify enforces). The produced snapshot can be
// served directly (PUT …/snapshot), verified (ftbfsverify -snapshot) or
// benchmarked (ftbfsbench -snapshot).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/edgelist"
	"repro/internal/graph"
	"repro/internal/snap"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftbfssnap:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 1, fmt.Errorf("usage: ftbfssnap info|verify|graph|structure|pack ...")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "info":
		return runInfo(rest, stdout)
	case "verify":
		return runVerify(rest, stdout)
	case "graph":
		return runDump(rest, stdout, false)
	case "structure":
		return runDump(rest, stdout, true)
	case "pack":
		return runPack(rest, stdout)
	default:
		return 1, fmt.Errorf("unknown command %q (info, verify, graph, structure, pack)", cmd)
	}
}

func oneFileArg(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("expected exactly one snapshot file argument")
	}
	return args[0], nil
}

func runInfo(args []string, stdout io.Writer) (int, error) {
	path, err := oneFileArg(args)
	if err != nil {
		return 1, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 1, err
	}
	info, err := snap.Inspect(f)
	f.Close()
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(stdout, "format version %d, %d sections\n", info.Version, len(info.Sections))
	intact := true
	for _, sec := range info.Sections {
		state := "ok"
		if !sec.Intact {
			state = "CORRUPT"
			intact = false
		}
		fmt.Fprintf(stdout, "  %s  %10d bytes  crc32c %08x  %s\n", sec.ID, sec.Bytes, sec.CRC, state)
	}
	if !intact {
		return 2, nil
	}
	sn, err := snap.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stdout, "decode: %v\n", err)
		return 2, nil
	}
	st := sn.Structure
	model := "edge"
	if st.VertexFaults {
		model = "vertex"
	}
	fmt.Fprintf(stdout, "graph: n=%d m=%d\n", st.G.N(), st.G.M())
	fmt.Fprintf(stdout, "structure: %d/%d edges kept, f=%d (%s faults), sources %v\n",
		st.NumEdges(), st.G.M(), st.Faults, model, st.Sources)
	fmt.Fprintf(stdout, "stats: dijkstras=%d fallbacks=%d maxNewEdges=%d maxE1=%d maxE2=%d\n",
		st.Stats.Dijkstras, st.Stats.Fallbacks, st.Stats.MaxNewEdges, st.Stats.MaxE1, st.Stats.MaxE2)
	m := sn.Meta
	if m != (snap.Meta{}) {
		fmt.Fprintf(stdout, "meta: graph=%q build=%q mode=%q seed=%d elapsedMs=%.3f\n",
			m.Graph, m.Build, m.Mode, m.Seed, m.ElapsedMS)
		if m.CreatedUnixMS != 0 {
			fmt.Fprintf(stdout, "created: %s\n", time.UnixMilli(m.CreatedUnixMS).UTC().Format(time.RFC3339))
		}
	}
	return 0, nil
}

func runVerify(args []string, stdout io.Writer) (int, error) {
	path, err := oneFileArg(args)
	if err != nil {
		return 1, err
	}
	sn, err := snap.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stdout, "INVALID: %v\n", err)
		return 2, nil
	}
	fmt.Fprintf(stdout, "OK: n=%d m=%d, %d structure edges, f=%d\n",
		sn.Structure.G.N(), sn.Structure.G.M(), sn.Structure.NumEdges(), sn.Structure.Faults)
	return 0, nil
}

func runDump(args []string, stdout io.Writer, structureOnly bool) (int, error) {
	path, err := oneFileArg(args)
	if err != nil {
		return 1, err
	}
	sn, err := snap.ReadFile(path)
	if err != nil {
		return 1, err
	}
	if structureOnly {
		return 0, edgelist.WriteSubset(stdout, sn.Structure.G, sn.Structure.Edges)
	}
	return 0, edgelist.Write(stdout, sn.Structure.G)
}

func runPack(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("ftbfssnap pack", flag.ContinueOnError)
	var (
		graphPath  = fs.String("graph", "", "graph edge-list file")
		structPath = fs.String("structure", "", "structure edge-list file (subset of graph)")
		sourcesArg = fs.String("sources", "0", "comma-separated source vertices")
		f          = fs.Int("f", 2, "fault budget the structure tolerates")
		vertex     = fs.Bool("vertex", false, "structure is for the vertex-failure model")
		mode       = fs.String("mode", "", "builder mode recorded in the metadata")
		seed       = fs.Int64("seed", 0, "tie-breaking seed recorded in the metadata")
		out        = fs.String("o", "", "output snapshot file")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *graphPath == "" || *structPath == "" || *out == "" {
		return 1, fmt.Errorf("pack needs -graph, -structure and -o")
	}
	g, err := readEdgeList(*graphPath)
	if err != nil {
		return 1, err
	}
	h, err := readEdgeList(*structPath)
	if err != nil {
		return 1, err
	}
	if h.N() != g.N() {
		return 1, fmt.Errorf("vertex counts differ: graph %d, structure %d", g.N(), h.N())
	}
	kept := graph.NewEdgeSet(g.M())
	for _, e := range h.Edges() {
		id, ok := g.EdgeID(e.U, e.V)
		if !ok {
			return 1, fmt.Errorf("structure edge %v not in graph", e)
		}
		kept.Add(id)
	}
	var sources []int
	for _, s := range strings.Split(*sourcesArg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 0 || v >= g.N() {
			return 1, fmt.Errorf("bad source %q", s)
		}
		sources = append(sources, v)
	}
	if *f < 0 {
		return 1, fmt.Errorf("bad fault budget %d", *f)
	}
	st := &core.Structure{
		G:            g,
		Sources:      sources,
		Faults:       *f,
		VertexFaults: *vertex,
		Edges:        kept,
	}
	sn := &snap.Snapshot{
		Structure: st,
		Meta: snap.Meta{
			Mode: *mode, Seed: *seed,
			CreatedUnixMS: time.Now().UnixMilli(),
		},
	}
	if err := snap.WriteFile(*out, sn); err != nil {
		return 1, err
	}
	fmt.Fprintf(stdout, "wrote %s: n=%d m=%d, %d structure edges, f=%d, sources %v\n",
		*out, g.N(), g.M(), kept.Len(), *f, sources)
	return 0, nil
}

func readEdgeList(path string) (*graph.Graph, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return edgelist.Read(fh)
}
