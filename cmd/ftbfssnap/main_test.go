package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/snap"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const cycleList = "n 4\n0 1\n1 2\n2 3\n0 3\n"

func TestPackInfoVerifyDump(t *testing.T) {
	dir := t.TempDir()
	g := writeFile(t, dir, "g.txt", cycleList)
	h := writeFile(t, dir, "h.txt", cycleList)
	out := filepath.Join(dir, "s.ftbfs")

	var buf bytes.Buffer
	code, err := run([]string{"pack", "-graph", g, "-structure", h, "-sources", "0", "-f", "1", "-o", out}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("pack: code=%d err=%v out=%s", code, err, buf.String())
	}

	buf.Reset()
	code, err = run([]string{"info", out}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("info: code=%d err=%v out=%s", code, err, buf.String())
	}
	for _, want := range []string{"format version 1", "GRPH", "STRC", "META", "n=4 m=4", "4/4 edges kept", "f=1"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("info output missing %q:\n%s", want, buf.String())
		}
	}

	buf.Reset()
	code, err = run([]string{"verify", out}, &buf)
	if err != nil || code != 0 || !strings.Contains(buf.String(), "OK:") {
		t.Fatalf("verify: code=%d err=%v out=%s", code, err, buf.String())
	}

	// The graph dump must round-trip the original edge list (Write emits
	// edges in lexicographic order).
	buf.Reset()
	code, err = run([]string{"graph", out}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("graph: code=%d err=%v", code, err)
	}
	if want := "n 4\n0 1\n0 3\n1 2\n2 3\n"; buf.String() != want {
		t.Fatalf("graph dump = %q, want %q", buf.String(), want)
	}
	buf.Reset()
	code, err = run([]string{"structure", out}, &buf)
	if err != nil || code != 0 || buf.String() != cycleList {
		t.Fatalf("structure dump = %q (code=%d err=%v)", buf.String(), code, err)
	}
}

func TestPackRejectsNonSubset(t *testing.T) {
	dir := t.TempDir()
	g := writeFile(t, dir, "g.txt", "n 3\n0 1\n1 2\n")
	h := writeFile(t, dir, "h.txt", "n 3\n0 2\n")
	var buf bytes.Buffer
	_, err := run([]string{"pack", "-graph", g, "-structure", h, "-o", filepath.Join(dir, "s.ftbfs")}, &buf)
	if err == nil || !strings.Contains(err.Error(), "not in graph") {
		t.Fatalf("err = %v", err)
	}
}

func TestInfoReportsCorruption(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "s.ftbfs")
	st, err := core.BuildDual(gen.GNP(20, 0.3, 1), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteFile(out, &snap.Snapshot{Structure: st}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff // flip a byte inside the STRC payload
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	code, err := run([]string{"info", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 || !strings.Contains(buf.String(), "CORRUPT") {
		t.Fatalf("info on corrupt file: code=%d out=%s", code, buf.String())
	}
	buf.Reset()
	code, err = run([]string{"verify", out}, &buf)
	if err != nil || code != 2 || !strings.Contains(buf.String(), "INVALID") {
		t.Fatalf("verify on corrupt file: code=%d err=%v out=%s", code, err, buf.String())
	}
}

func TestUnknownCommand(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run([]string{"frobnicate"}, &buf); err == nil {
		t.Fatal("unknown command accepted")
	}
	if _, err := run(nil, &buf); err == nil {
		t.Fatal("missing command accepted")
	}
}
