package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/edgelist"
)

func TestLBGenSingleSource(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-f", "1", "-n", "100"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# G*_1:") {
		t.Fatalf("missing header:\n%s", s[:100])
	}
	// The emitted body must parse back as a graph.
	body := s[strings.Index(s, "n "):]
	g, err := edgelist.Read(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() > 100 {
		t.Fatalf("oversized instance: %d", g.N())
	}
}

func TestLBGenCerts(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-f", "2", "-n", "130", "-certs"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# leaf 0") {
		t.Fatal("certificates missing")
	}
}

func TestLBGenMultiSource(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-f", "1", "-n", "300", "-sigma", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "multi-source") {
		t.Fatal("multi-source header missing")
	}
}

func TestLBGenErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-f", "2", "-n", "10"}, &out); err == nil {
		t.Fatal("tiny n accepted")
	}
	if err := run(context.Background(), []string{"-f", "0", "-n", "100"}, &out); err == nil {
		t.Fatal("f=0 accepted")
	}
}
