// Command lbgen emits a Theorem-1.2 lower-bound instance G*_f as an edge
// list, together with the necessity certificates: for every leaf, the fault
// set under which each of its bipartite edges is irreplaceable.
//
// Usage:
//
//	lbgen -f 2 -n 200 [-sigma 1] [-certs] [-timeout 30s]
//
// Instance generation is Θ(leaves · |X|) — quadratic in n — so SIGINT and
// -timeout cancel it cooperatively through the same context plumbing the
// builders use.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	ftbfs "repro"
	"repro/internal/edgelist"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lbgen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lbgen", flag.ContinueOnError)
	var (
		f       = fs.Int("f", 2, "fault budget of the instance")
		n       = fs.Int("n", 200, "approximate vertex count")
		sigma   = fs.Int("sigma", 1, "number of sources")
		certs   = fs.Bool("certs", false, "print per-leaf necessity fault sets as comments")
		timeout = fs.Duration("timeout", 0, "abort generation after this long (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *sigma > 1 {
		mi, err := ftbfs.LowerBoundMultiCtx(ctx, *f, *sigma, *n)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# G*_%d multi-source: n=%d m=%d sigma=%d sources=%v forced=%d\n",
			*f, mi.G.N(), mi.G.M(), *sigma, mi.Sources, mi.BipartiteCount)
		return edgelist.Write(stdout, mi.G)
	}
	inst, err := ftbfs.LowerBoundCtx(ctx, *f, *n)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# G*_%d: n=%d m=%d source=%d leaves=%d |X|=%d forced=%d\n",
		*f, inst.G.N(), inst.G.M(), inst.Source, len(inst.Tower.Leaves), len(inst.X),
		len(inst.Bipartite))
	if *certs {
		for l, lf := range inst.Tower.Leaves {
			ids := inst.FaultSetFor(l)
			fmt.Fprintf(stdout, "# leaf %d (vertex %d, depth %d): fault set", l, lf.V, lf.Depth)
			for _, id := range ids {
				fmt.Fprintf(stdout, " %v", inst.G.EdgeAt(id))
			}
			fmt.Fprintln(stdout)
		}
	}
	return edgelist.Write(stdout, inst.G)
}
