package ftbfs_test

import (
	"fmt"

	ftbfs "repro"
)

// ExampleBuildDualFTBFS builds the Theorem-1.1 structure on a ring and
// shows it must keep every edge (a cycle has no redundancy to shed).
func ExampleBuildDualFTBFS() {
	g := ftbfs.Cycle(8)
	st, err := ftbfs.BuildDualFTBFS(g, 0, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("edges kept:", st.NumEdges(), "of", g.M())
	fmt.Println("verified:", ftbfs.Verify(g, st, []int{0}, 2).OK)
	// Output:
	// edges kept: 8 of 8
	// verified: true
}

// ExampleBuildDualFTBFS_grid shows real sparsification: on a 5×5 grid the
// dual structure drops none of the 40 edges only if all are needed — here
// the builder keeps a strict subset on the denser king-ish graph instead.
func ExampleBuildDualFTBFS_grid() {
	g := ftbfs.Complete(8)
	st, err := ftbfs.BuildDualFTBFS(g, 0, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("graph edges:", g.M())
	fmt.Println("structure is sparser:", st.NumEdges() < g.M())
	fmt.Println("verified:", ftbfs.Verify(g, st, []int{0}, 2).OK)
	// Output:
	// graph edges: 28
	// structure is sparser: true
	// verified: true
}

// ExampleNewOracle routes around a concrete failure inside the structure.
func ExampleNewOracle() {
	g := ftbfs.Cycle(6) // 0-1-2-3-4-5-0
	st, _ := ftbfs.BuildDualFTBFS(g, 0, nil)
	o, _ := ftbfs.NewOracle(st)
	e01, _ := g.EdgeID(0, 1)
	d, _ := o.Dist(0, 1, []int{e01}) // edge 0-1 down: go the long way
	p, _ := o.Route(0, 1, []int{e01})
	fmt.Println("distance:", d)
	fmt.Println("route:", p)
	// Output:
	// distance: 5
	// route: 0-5-4-3-2-1
}

// ExampleLowerBound inspects a Theorem-1.2 adversarial instance.
func ExampleLowerBound() {
	inst, err := ftbfs.LowerBound(1, 80)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("leaves:", len(inst.Tower.Leaves))
	fmt.Println("forced bipartite edges:", len(inst.Bipartite))
	fmt.Println("fault set size for leaf 0:", len(inst.FaultSetFor(0)))
	// Output:
	// leaves: 4
	// forced bipartite edges: 156
	// fault set size for leaf 0: 1
}

// ExampleStructure_Summary prints the built-in report.
func ExampleStructure_Summary() {
	g := ftbfs.PathGraph(5)
	st, _ := ftbfs.BuildDualFTBFS(g, 0, nil)
	fmt.Print(st.Summary())
	// Output:
	// FT-BFS structure: sources=[0] f=2 (edge faults)
	//   graph: n=5 m=4
	//   edges kept: 4 (100.0% of G; spanning tree would be 4)
	//   envelope: |H|/n^{5/3} = 0.274 (Theorem 1.1 bound O(n^{5/3}))
	//   effort: 21 shortest-path searches
}
