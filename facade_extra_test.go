package ftbfs_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	ftbfs "repro"
)

func TestFacadeVertexFaults(t *testing.T) {
	g := ftbfs.GNP(14, 0.3, 11)
	for f := 0; f <= 2; f++ {
		st, err := ftbfs.BuildVertexFTBFS(g, 0, f, nil)
		if err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		rep := ftbfs.VerifyVertex(g, st, []int{0}, f)
		if !rep.OK {
			t.Fatalf("f=%d: %v", f, rep.Violations)
		}
	}
}

func TestFacadeRecursiveBuilder(t *testing.T) {
	g := ftbfs.SparseGNP(16, 3, 5)
	for f := 0; f <= 3; f++ {
		st, err := ftbfs.BuildRecursiveFTBFS(g, 0, f, nil)
		if err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		fCheck := f
		if fCheck > 3 {
			fCheck = 3
		}
		rep := ftbfs.Verify(g, st, []int{0}, fCheck)
		if !rep.OK {
			t.Fatalf("f=%d: %v", f, rep.Violations)
		}
	}
}

func TestFacadeOracleEndToEnd(t *testing.T) {
	g := ftbfs.Grid(4, 5)
	st, err := ftbfs.BuildDualFTBFS(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := ftbfs.NewOracle(st)
	if err != nil {
		t.Fatal(err)
	}
	d, err := o.Dist(0, 19, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	p, err := o.Route(0, 19, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || int32(p.Len()) != d {
		t.Fatalf("route/dist mismatch: %v vs %d", p, d)
	}
}

// TestQuickBuildVerifyRoundTrip is the facade-level randomized campaign:
// random graphs, random sources, random seeds — the dual structure always
// passes the exhaustive dual-failure check.
func TestQuickBuildVerifyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		var g *ftbfs.Graph
		switch rng.Intn(4) {
		case 0:
			g = ftbfs.SparseGNP(n, 3+rng.Float64()*3, seed)
		case 1:
			g = ftbfs.GNP(n, 0.15+rng.Float64()*0.2, seed)
		case 2:
			g = ftbfs.TreePlusChords(n, rng.Intn(n/2+1), seed)
		default:
			g = ftbfs.RandomRegular(n, 3, seed)
		}
		src := rng.Intn(n)
		st, err := ftbfs.BuildDualFTBFS(g, src, &ftbfs.Options{Seed: seed})
		if err != nil {
			return false
		}
		return ftbfs.Verify(g, st, []int{src}, 2).OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickApproxRoundTrip does the same for the Section-5 approximation
// at f = 1 with one or two sources.
func TestQuickApproxRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(14)
		g := ftbfs.SparseGNP(n, 3, seed)
		sources := []int{rng.Intn(n)}
		if rng.Intn(2) == 0 {
			sources = append(sources, rng.Intn(n))
		}
		st, err := ftbfs.BuildApproxFTMBFS(g, sources, 1, nil)
		if err != nil {
			return false
		}
		return ftbfs.Verify(g, st, sources, 1).OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStructuresNested confirms the budget hierarchy on one graph: any
// valid f-structure is also a valid (f-1)-structure, and the builders'
// sizes are monotone in f for the recursive family.
func TestStructuresNested(t *testing.T) {
	g := ftbfs.SparseGNP(24, 4, 9)
	var prev *ftbfs.Structure
	for f := 0; f <= 3; f++ {
		st, err := ftbfs.BuildRecursiveFTBFS(g, 0, f, &ftbfs.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && st.NumEdges() < prev.NumEdges() {
			t.Fatalf("f=%d structure smaller than f=%d: %d < %d",
				f, f-1, st.NumEdges(), prev.NumEdges())
		}
		// An f-structure must pass the f-1 check too.
		if f >= 1 && f-1 <= 2 {
			rep := ftbfs.Verify(g, st, []int{0}, f-1)
			if !rep.OK {
				t.Fatalf("f=%d structure fails f=%d check", f, f-1)
			}
		}
		prev = st
	}
}
