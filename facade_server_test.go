package ftbfs_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	ftbfs "repro"
)

// TestFacadeOracleSet exercises the concurrent-serving exports: a shared
// OracleSet queried through pooled handles from several goroutines.
func TestFacadeOracleSet(t *testing.T) {
	g := ftbfs.GNP(30, 0.2, 4)
	st, err := ftbfs.BuildDualFTBFS(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := ftbfs.NewOracleSet(st)
	if err != nil {
		t.Fatal(err)
	}
	if set.Faults() != 2 {
		t.Fatalf("faults = %d", set.Faults())
	}
	single, err := ftbfs.NewOracle(st)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			o := set.Acquire()
			defer set.Release(o)
			for a := c; a < g.M(); a += 8 {
				if _, err := o.Dist(0, a%g.N(), []int{a}); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	// Spot-check one answer against the single-handle oracle.
	want, err := single.Dist(0, 7, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	o := set.Handle()
	got, err := o.Dist(0, 7, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("set answer %d, oracle answer %d", got, want)
	}
	var stats ftbfs.OracleCacheStats = set.CacheStats()
	if stats.Misses == 0 {
		t.Fatalf("no cache traffic recorded: %+v", stats)
	}
}

// TestFacadeServer stands the ftbfsd handler up through the facade and
// runs one build + query round trip.
func TestFacadeServer(t *testing.T) {
	srv := ftbfs.NewServer(&ftbfs.ServerConfig{CacheEntries: 64})
	if err := srv.RegisterGraph("f", &ftbfs.ServerGenSpec{Family: "cycle", N: 12}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/graphs/f/builds", "application/json",
		strings.NewReader(`{"mode":"dual","sources":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	var build struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&build); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for (build.Status == "queued" || build.Status == "building") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/graphs/f/builds/" + build.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&build); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if build.Status != "ready" {
		t.Fatalf("build status %q", build.Status)
	}
	r, err := http.Get(ts.URL + "/v1/graphs/f/builds/" + build.ID + "/dist?source=0&target=6&faults=0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var dr struct {
		Dist      int32 `json:"dist"`
		Reachable bool  `json:"reachable"`
	}
	if err := json.NewDecoder(r.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	// 12-cycle, edge 0 (0-1) failed: 0→6 goes the long way, 6 hops.
	if !dr.Reachable || dr.Dist != 6 {
		t.Fatalf("want dist 6, got %+v", dr)
	}
}
