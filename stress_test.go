package ftbfs_test

import (
	"fmt"
	"testing"

	ftbfs "repro"
)

// TestStressMediumGraphs pushes the dual builder to n = 150–240 across
// families and verifies exhaustively (hundreds of thousands of fault sets).
// Skipped with -short.
func TestStressMediumGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cases := []struct {
		name string
		g    *ftbfs.Graph
		src  int
	}{
		{"sparse150", ftbfs.SparseGNP(150, 5, 1), 0},
		{"grid12x12", ftbfs.Grid(12, 12), 0},
		{"layered8x20", ftbfs.Layered(8, 20, 0.3, 2), 0},
		{"regular200", ftbfs.RandomRegular(200, 4, 3), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st, err := ftbfs.BuildDualFTBFS(c.g, c.src, &ftbfs.Options{Seed: 1, Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			if st.Stats.TieWarnings != 0 {
				t.Errorf("tie warnings: %d", st.Stats.TieWarnings)
			}
			rep := ftbfs.VerifyWithOptions(c.g, st, []int{c.src}, 2,
				&ftbfs.VerifyOptions{Parallelism: 4})
			if !rep.OK {
				t.Fatalf("verification failed: %v", rep.Violations[0])
			}
			t.Logf("%s: n=%d m=%d |H|=%d checked=%d pruned=%d",
				c.name, c.g.N(), c.g.M(), st.NumEdges(),
				rep.FaultSetsChecked, rep.FaultSetsPruned)
		})
	}
}

// TestStressAdversarialLarge builds on the largest adversarial instance we
// can exhaustively verify and confirms every forced edge is kept.
func TestStressAdversarialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	inst, err := ftbfs.LowerBound(2, 220)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ftbfs.BuildDualFTBFS(inst.G, inst.Source, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range inst.Bipartite {
		if !st.Edges.Has(id) {
			t.Fatalf("forced edge %v dropped", inst.G.EdgeAt(id))
		}
	}
	rep := ftbfs.Verify(inst.G, st, []int{inst.Source}, 2)
	if !rep.OK {
		t.Fatalf("verification failed: %v", rep.Violations[0])
	}
}

// TestStressSampledLarge runs the sampled verifier on an n = 500 build —
// beyond exhaustive reach but representative of real deployments.
func TestStressSampledLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := ftbfs.SparseGNP(500, 5, 7)
	st, err := ftbfs.BuildDualFTBFS(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := ftbfs.VerifySampled(g, st, []int{0}, 2, 2000, 3)
	if !rep.OK {
		t.Fatalf("sampled verification failed: %v", rep.Violations[0])
	}
	ratio := float64(st.NumEdges()) / float64(g.N())
	if ratio > 10 {
		t.Errorf("suspiciously dense structure: %.1f edges/vertex", ratio)
	}
	fmt.Printf("stress n=500: m=%d |H|=%d (%.2f edges/vertex), %d searches\n",
		g.M(), st.NumEdges(), ratio, st.Stats.Dijkstras)
}
