// Observational-equivalence tests for BFS vertex renumbering: a structure
// built over ReorderBFS(g) must be the SAME object as one built over g up
// to the vertex relabeling — same kept edge IDs, same distances, same
// realized routes. The golden fingerprints of equivalence_test.go are the
// pin: translating an ordered build back through its order maps must
// reproduce the exact hashes recorded for the plain representation.
package ftbfs_test

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	ftbfs "repro"
)

// fingerprintStructureWire hashes an ordered structure in the wire
// numbering: kept edge IDs with endpoints mapped through toOld and
// re-normalized. On a plain graph it degenerates to fingerprintStructure.
func fingerprintStructureWire(st *ftbfs.Structure) string {
	_, toOld := st.G.OrderMaps()
	wire := func(v int) int {
		if toOld == nil {
			return v
		}
		return int(toOld[v])
	}
	h := sha256.New()
	var buf [8]byte
	put := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(x)))
		h.Write(buf[:])
	}
	put(st.G.N())
	put(st.G.M())
	put(st.NumEdges())
	st.Edges.ForEach(func(id int) {
		e := st.G.EdgeAt(id)
		u, v := wire(e.U), wire(e.V)
		if u > v {
			u, v = v, u
		}
		put(id)
		put(u)
		put(v)
	})
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// fingerprintOracleWire mirrors fingerprintOracle with every vertex ID
// translated at the boundary: queries go in through toNew, distance
// tables come out re-indexed into wire order. Fault IDs are edge IDs and
// need no translation — that is the renumbering contract.
func fingerprintOracleWire(t *testing.T, st *ftbfs.Structure, wireSource, trials int) string {
	t.Helper()
	toNew, _ := st.G.OrderMaps()
	in := func(v int) int {
		if toNew == nil {
			return v
		}
		return int(toNew[v])
	}
	set, err := ftbfs.NewOracleSet(st)
	if err != nil {
		t.Fatal(err)
	}
	o := set.Handle()
	rng := rand.New(rand.NewSource(99))
	h := sha256.New()
	var buf [8]byte
	put := func(x int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	m := st.G.M()
	for trial := 0; trial < trials; trial++ {
		var faults []int
		for k := rng.Intn(st.Faults + 1); k > 0; k-- {
			faults = append(faults, rng.Intn(m))
		}
		ds, err := o.Dists(in(wireSource), faults)
		if err != nil {
			t.Fatalf("Dists(%v): %v", faults, err)
		}
		for w := range ds {
			put(int64(ds[in(w)]))
		}
		v := rng.Intn(st.G.N())
		p, err := o.Route(in(wireSource), in(v), faults)
		if err != nil {
			t.Fatalf("Route(%v): %v", faults, err)
		}
		put(int64(len(p)))
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// TestOrderedGoldenFingerprints rebuilds a subset of the golden cases
// over BFS-reordered graphs and requires the wire-translated fingerprints
// to match the hashes pinned for the plain representation — renumbering
// is invisible to every observable of the structure and its oracle.
func TestOrderedGoldenFingerprints(t *testing.T) {
	cases := []struct {
		name       string
		build      func() (*ftbfs.Structure, error)
		structure  string
		oracle     string
		oracleRuns int
	}{
		{
			name: "dual/sparse-gnp-80",
			build: func() (*ftbfs.Structure, error) {
				g := ftbfs.ReorderBFS(ftbfs.SparseGNP(80, 6, 2015))
				toNew, _ := g.OrderMaps()
				return ftbfs.BuildDualFTBFS(g, int(toNew[0]), nil)
			},
			structure:  "b6397b093386326806032c0b",
			oracle:     "717b6992aa8b4b3ccf7935a9",
			oracleRuns: 60,
		},
		{
			name: "single/tree-chords-60",
			build: func() (*ftbfs.Structure, error) {
				g := ftbfs.ReorderBFS(ftbfs.TreePlusChords(60, 8, 3))
				toNew, _ := g.OrderMaps()
				return ftbfs.BuildSingleFTBFS(g, int(toNew[0]), nil)
			},
			structure:  "1e4567168e874c38d750bf8c",
			oracle:     "25138d806cba2eb8516dad59",
			oracleRuns: 40,
		},
		{
			name: "exhaustive-f2/grid-5x5",
			build: func() (*ftbfs.Structure, error) {
				g := ftbfs.ReorderBFS(ftbfs.Grid(5, 5))
				toNew, _ := g.OrderMaps()
				return ftbfs.BuildExhaustiveFTBFS(g, int(toNew[0]), 2, nil)
			},
			structure:  "083149d1eb1b810711bacd1b",
			oracle:     "6c9b7f902c70c5472a425749",
			oracleRuns: 40,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			if !st.G.Ordered() {
				t.Fatal("build did not run on an ordered graph")
			}
			if got := fingerprintStructureWire(st); got != c.structure {
				t.Errorf("wire structure fingerprint = %s, want %s", got, c.structure)
			}
			if got := fingerprintOracleWire(t, st, 0, c.oracleRuns); got != c.oracle {
				t.Errorf("wire oracle fingerprint = %s, want %s", got, c.oracle)
			}
		})
	}
}

// TestOrderedRandomEquivalence cross-checks plain and ordered builds over
// random graphs directly (no pinned hashes): for random fault sets, every
// translated distance table must agree entry for entry, and route
// lengths must realize the same distances.
func TestOrderedRandomEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := ftbfs.SparseGNP(120, 7, seed)
		og := ftbfs.ReorderBFS(ftbfs.SparseGNP(120, 7, seed))
		toNew, _ := og.OrderMaps()
		st, err := ftbfs.BuildDualFTBFS(g, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		ost, err := ftbfs.BuildDualFTBFS(og, int(toNew[0]), nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.NumEdges() != ost.NumEdges() {
			t.Fatalf("seed %d: kept %d vs %d edges", seed, st.NumEdges(), ost.NumEdges())
		}
		set, err := ftbfs.NewOracleSet(st)
		if err != nil {
			t.Fatal(err)
		}
		oset, err := ftbfs.NewOracleSet(ost)
		if err != nil {
			t.Fatal(err)
		}
		o, oo := set.Handle(), oset.Handle()
		rng := rand.New(rand.NewSource(seed * 7))
		for trial := 0; trial < 25; trial++ {
			var faults []int
			for k := rng.Intn(3); k > 0; k-- {
				faults = append(faults, rng.Intn(g.M()))
			}
			ds, err := o.Dists(0, faults)
			if err != nil {
				t.Fatal(err)
			}
			ods, err := oo.Dists(int(toNew[0]), faults)
			if err != nil {
				t.Fatal(err)
			}
			for w := range ds {
				if ds[w] != ods[toNew[w]] {
					t.Fatalf("seed %d faults %v: dist[%d] = %d plain vs %d ordered",
						seed, faults, w, ds[w], ods[toNew[w]])
				}
			}
			v := rng.Intn(g.N())
			p, err := o.Route(0, v, faults)
			if err != nil {
				t.Fatal(err)
			}
			op, err := oo.Route(int(toNew[0]), int(toNew[v]), faults)
			if err != nil {
				t.Fatal(err)
			}
			if len(p) != len(op) {
				t.Fatalf("seed %d faults %v: route to %d has %d vs %d vertices",
					seed, faults, v, len(p), len(op))
			}
		}
	}
}
